package proto

import (
	"sort"
	"testing"

	"congestmwc/internal/congest"
	"congestmwc/internal/gen"
	"congestmwc/internal/graph"
	"congestmwc/internal/seq"
)

func newNet(t *testing.T, g *graph.Graph) *congest.Network {
	t.Helper()
	net, err := congest.NewNetwork(g, congest.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildTreePath(t *testing.T) {
	g := gen.Path(6)
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if tree.Depth[v] != v {
			t.Errorf("depth[%d] = %d, want %d", v, tree.Depth[v], v)
		}
	}
	if tree.Parent[0] != -1 || tree.Parent[3] != 2 {
		t.Errorf("parents wrong: %v", tree.Parent)
	}
	if len(tree.Children[2]) != 1 || tree.Children[2][0] != 3 {
		t.Errorf("children[2] = %v, want [3]", tree.Children[2])
	}
	if tree.Height != 5 {
		t.Errorf("height = %d, want 5", tree.Height)
	}
}

func TestBuildTreeDepthsMatchBFS(t *testing.T) {
	g, err := (gen.Random{N: 80, P: 0.05, Seed: 3}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.BFSComm(g, 0)
	for v := 0; v < g.N(); v++ {
		if int64(tree.Depth[v]) != want[v] {
			t.Errorf("depth[%d] = %d, want %d", v, tree.Depth[v], want[v])
		}
		if v != 0 && tree.Depth[tree.Parent[v]] != tree.Depth[v]-1 {
			t.Errorf("parent depth inconsistent at %d", v)
		}
	}
	// Tree construction is O(D): allow a small constant factor.
	d, _ := g.CommDiameter()
	if r := net.Stats().Rounds; r > 4*d+8 {
		t.Errorf("tree construction took %d rounds for diameter %d", r, d)
	}
}

func TestBuildTreeDirectedUsesCommGraph(t *testing.T) {
	// Directed path 0->1->2: communication is bidirectional, so a tree
	// rooted at 2 must still reach 0.
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}},
		graph.Options{Directed: true})
	net := newNet(t, g)
	tree, err := BuildTree(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth[0] != 2 {
		t.Errorf("depth[0] = %d, want 2", tree.Depth[0])
	}
}

func TestConvergecastMin(t *testing.T) {
	g, err := (gen.Random{N: 50, P: 0.08, Seed: 11}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, g.N())
	for v := range values {
		values[v] = int64(1000 - 7*v)
	}
	got, err := ConvergecastMin(net, tree, values)
	if err != nil {
		t.Fatal(err)
	}
	want := values[g.N()-1]
	if got != want {
		t.Errorf("ConvergecastMin = %d, want %d", got, want)
	}
}

func TestConvergecastMinWithInf(t *testing.T) {
	g := gen.Path(4)
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []int64{seq.Inf, seq.Inf, 42, seq.Inf}
	got, err := ConvergecastMin(net, tree, values)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("ConvergecastMin = %d, want 42", got)
	}
}

func TestBroadcastDeliversAllRecords(t *testing.T) {
	g, err := (gen.Random{N: 30, P: 0.1, Seed: 2}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := make([][][]int64, g.N())
	total := 0
	for v := 0; v < g.N(); v += 3 {
		values[v] = [][]int64{{int64(v), int64(v * v)}}
		total++
	}
	out, err := Broadcast(net, tree, values)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if len(out[v]) != total {
			t.Fatalf("node %d received %d records, want %d", v, len(out[v]), total)
		}
		sums := make(map[int64]bool)
		for _, rec := range out[v] {
			if rec[1] != rec[0]*rec[0] {
				t.Fatalf("node %d: corrupted record %v", v, rec)
			}
			sums[rec[0]] = true
		}
		if len(sums) != total {
			t.Fatalf("node %d: duplicate records", v)
		}
	}
}

func TestBroadcastRoundsLinearInM(t *testing.T) {
	// Broadcasting M records over a path of length D should take O(M+D)
	// rounds, not O(M*D).
	g := gen.Path(20)
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Stats().Rounds
	m := 50
	values := make([][][]int64, 20)
	for i := 0; i < m; i++ {
		values[19] = append(values[19], []int64{int64(i)})
	}
	if _, err := Broadcast(net, tree, values); err != nil {
		t.Fatal(err)
	}
	rounds := net.Stats().Rounds - before
	// Up 19 hops + down 19 hops + M pipelined, times message size/bandwidth.
	if rounds > 2*(m+2*19)+10 {
		t.Errorf("broadcast of %d records took %d rounds, want O(M+D)", m, rounds)
	}
}

func TestMultiBFSMatchesSeqBFS(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g, err := (gen.Random{N: 60, P: 0.06, Directed: directed, Seed: 21}).Graph()
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, g)
		sources := []int{0, 7, 13, 40}
		res, err := RunMultiBFS(net, MultiBFSSpec{Sources: sources, Dir: Forward})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sources {
			want := seq.BFS(g, s)
			for v := 0; v < g.N(); v++ {
				if res.Dist[v][i] != want[v] {
					t.Errorf("directed=%v src %d v %d: dist %d, want %d",
						directed, s, v, res.Dist[v][i], want[v])
				}
			}
		}
	}
}

func TestMultiBFSBackward(t *testing.T) {
	g, err := (gen.Random{N: 40, P: 0.08, Directed: true, Seed: 5}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	sources := []int{3, 17}
	res, err := RunMultiBFS(net, MultiBFSSpec{Sources: sources, Dir: Backward})
	if err != nil {
		t.Fatal(err)
	}
	rev := g.Reverse()
	for i, s := range sources {
		want := seq.BFS(rev, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestMultiBFSBound(t *testing.T) {
	g := gen.Path(10)
	net := newNet(t, g)
	res, err := RunMultiBFS(net, MultiBFSSpec{Sources: []int{0}, Dir: Undirected, Bound: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		want := int64(v)
		if v > 4 {
			want = seq.Inf
		}
		if res.Dist[v][0] != want {
			t.Errorf("dist[%d] = %d, want %d", v, res.Dist[v][0], want)
		}
	}
}

func TestMultiBFSWeightedLengths(t *testing.T) {
	// Arc lengths simulate the stretched graph: distances must equal
	// weighted shortest paths.
	g, err := (gen.Random{N: 35, P: 0.1, Directed: true, Weighted: true, MaxW: 6, Seed: 9}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	sources := []int{0, 11}
	res, err := RunMultiBFS(net, MultiBFSSpec{
		Sources: sources,
		Dir:     Forward,
		Length:  func(a graph.Arc) int64 { return a.Weight },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		want := seq.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestMultiBFSStretchedChargesRounds(t *testing.T) {
	// A single heavy edge must take ~weight rounds to traverse.
	g := graph.MustBuild(2, []graph.Edge{{From: 0, To: 1, Weight: 30}},
		graph.Options{Weighted: true})
	net := newNet(t, g)
	res, err := RunMultiBFS(net, MultiBFSSpec{
		Sources: []int{0},
		Dir:     Undirected,
		Length:  func(a graph.Arc) int64 { return a.Weight },
		Stretch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[1][0] != 30 {
		t.Fatalf("dist = %d, want 30", res.Dist[1][0])
	}
	if res.Rounds < 30 {
		t.Errorf("stretched traversal took %d rounds, want >= 30", res.Rounds)
	}
}

func TestMultiBFSInitDist(t *testing.T) {
	// Seed nonzero initial estimates and check relaxation combines them:
	// field 0 starts at node 5 with value 100 on a path; expected
	// dist[v][0] = 100 + |v-5|.
	g := gen.Path(10)
	net := newNet(t, g)
	init := make([][]int64, 10)
	for v := range init {
		init[v] = []int64{seq.Inf}
	}
	init[5][0] = 100
	res, err := RunMultiBFS(net, MultiBFSSpec{InitDist: init, Dir: Undirected})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		want := 100 + int64(abs(v-5))
		if res.Dist[v][0] != want {
			t.Errorf("dist[%d] = %d, want %d", v, res.Dist[v][0], want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMultiBFSTopSigma(t *testing.T) {
	// All vertices are sources on a path with sigma=3: each node must know
	// exact distances to (at least) its 3 nearest vertices, and must not
	// know distances to far vertices (beyond what forwarding allows).
	n := 12
	g := gen.Path(n)
	net := newNet(t, g)
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	res, err := RunMultiBFS(net, MultiBFSSpec{Sources: sources, Dir: Undirected, TopSigma: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		// Collect the known (dist, src) pairs sorted.
		type pair struct {
			d int64
			s int
		}
		var known []pair
		for s := 0; s < n; s++ {
			if res.Dist[v][s] < seq.Inf {
				known = append(known, pair{res.Dist[v][s], s})
			}
		}
		sort.Slice(known, func(i, j int) bool {
			if known[i].d != known[j].d {
				return known[i].d < known[j].d
			}
			return known[i].s < known[j].s
		})
		if len(known) < 3 {
			t.Fatalf("node %d knows only %d sources, want >= 3", v, len(known))
		}
		// The 3 nearest must be correct.
		for i := 0; i < 3; i++ {
			if want := int64(abs(v - known[i].s)); known[i].d != want {
				t.Errorf("node %d: dist to %d = %d, want %d", v, known[i].s, known[i].d, want)
			}
		}
	}
}

func TestMultiBFSPredFormsTree(t *testing.T) {
	g, err := (gen.Random{N: 50, P: 0.07, Seed: 13}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	res, err := RunMultiBFS(net, MultiBFSSpec{Sources: []int{4}, Dir: Undirected})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if v == 4 {
			if res.Pred[v][0] != -1 {
				t.Errorf("source pred = %d, want -1", res.Pred[v][0])
			}
			continue
		}
		p := int(res.Pred[v][0])
		if p < 0 {
			t.Fatalf("node %d has no pred", v)
		}
		if res.Dist[p][0]+1 != res.Dist[v][0] {
			t.Errorf("node %d: pred %d dist %d vs own %d", v, p, res.Dist[p][0], res.Dist[v][0])
		}
	}
}

func TestMultiBFSKSourceRoundsPipelines(t *testing.T) {
	// k sources on a path: rounds should be O(k + D), not O(k*D).
	n, k := 60, 20
	g := gen.Path(n)
	net := newNet(t, g)
	sources := make([]int, k)
	for i := range sources {
		sources[i] = i * 3
	}
	res, err := RunMultiBFS(net, MultiBFSSpec{Sources: sources, Dir: Undirected})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 4*(n+k) {
		t.Errorf("k-source BFS took %d rounds, want O(k+D) ~ %d", res.Rounds, n+k)
	}
	for i, s := range sources {
		want := seq.BFS(g, s)
		for v := 0; v < n; v++ {
			if res.Dist[v][i] != want[v] {
				t.Fatalf("src %d v %d: dist %d want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestMultiBFSSpecValidation(t *testing.T) {
	net := newNet(t, gen.Path(3))
	if _, err := RunMultiBFS(net, MultiBFSSpec{}); err == nil {
		t.Error("empty spec should fail")
	}
	bad := make([][]int64, 2) // wrong row count
	if _, err := RunMultiBFS(net, MultiBFSSpec{InitDist: bad}); err == nil {
		t.Error("short InitDist should fail")
	}
}

func TestConvergecastOps(t *testing.T) {
	g, err := (gen.Random{N: 30, P: 0.1, Seed: 4}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	tree, err := BuildTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, g.N())
	var sum int64
	for v := range values {
		values[v] = int64((v*7)%13 - 6)
		sum += values[v]
	}
	tests := []struct {
		op   AggregateOp
		want int64
	}{
		{op: OpMin, want: -6},
		{op: OpMax, want: 6},
		{op: OpSum, want: sum},
	}
	for _, tt := range tests {
		got, err := Convergecast(net, tree, tt.op, values)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("op %d: got %d, want %d", tt.op, got, tt.want)
		}
	}
	if _, err := Convergecast(net, tree, AggregateOp(99), values); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := Convergecast(net, tree, OpMin, values[:3]); err == nil {
		t.Error("short value slice should fail")
	}
}
