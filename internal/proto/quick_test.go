package proto

import (
	"testing"
	"testing/quick"

	"congestmwc/internal/congest"
	"congestmwc/internal/gen"
	"congestmwc/internal/graph"
	"congestmwc/internal/seq"
)

// Property: multi-source BFS equals the sequential reference on random
// graphs, for random source sets, both directions, all graph classes.
func TestMultiBFSAgreesWithSeqProperty(t *testing.T) {
	prop := func(nRaw, srcRaw uint8, directed bool, seed int64) bool {
		n := 5 + int(nRaw)%40
		g, err := (gen.Random{N: n, P: 0.12, Directed: directed, Seed: seed}).Graph()
		if err != nil {
			return false
		}
		net, err := congest.NewNetwork(g, congest.Options{Seed: seed + 1})
		if err != nil {
			return false
		}
		sources := []int{int(srcRaw) % n, (int(srcRaw) * 7) % n}
		if sources[0] == sources[1] {
			sources = sources[:1]
		}
		res, err := RunMultiBFS(net, MultiBFSSpec{Sources: sources, Dir: Forward})
		if err != nil {
			return false
		}
		for i, s := range sources {
			want := seq.BFS(g, s)
			for v := 0; v < n; v++ {
				if res.Dist[v][i] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: weighted relaxation (non-stretched) equals Dijkstra.
func TestMultiBFSWeightedAgreesWithDijkstraProperty(t *testing.T) {
	prop := func(nRaw uint8, seed int64) bool {
		n := 5 + int(nRaw)%30
		g, err := (gen.Random{N: n, P: 0.15, Directed: true, Weighted: true,
			MaxW: 12, Seed: seed}).Graph()
		if err != nil {
			return false
		}
		net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
		if err != nil {
			return false
		}
		res, err := RunMultiBFS(net, MultiBFSSpec{
			Sources: []int{0},
			Dir:     Forward,
			Length:  func(a graph.Arc) int64 { return a.Weight },
		})
		if err != nil {
			return false
		}
		want := seq.Dijkstra(g, 0)
		for v := 0; v < n; v++ {
			if res.Dist[v][0] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the approximate hop-bounded SSSP brackets the true distance:
// d <= d' <= (1+eps) d (+1 rounding) for pairs whose shortest paths fit the
// hop budget.
func TestApproxHopSSSPBracketsProperty(t *testing.T) {
	const eps = 0.5
	prop := func(nRaw uint8, seed int64) bool {
		n := 5 + int(nRaw)%25
		g, err := (gen.Random{N: n, P: 0.15, Weighted: true, MaxW: 16, Seed: seed}).Graph()
		if err != nil {
			return false
		}
		net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
		if err != nil {
			return false
		}
		res, err := RunApproxHopSSSP(net, ApproxHopSSSPSpec{
			Sources: []int{0}, H: n, Eps: eps, Dir: Undirected,
		})
		if err != nil {
			return false
		}
		want := seq.Dijkstra(g, 0)
		for v := 0; v < n; v++ {
			got := res.Dist[v][0]
			if want[v] >= seq.Inf {
				if got < seq.Inf {
					return false
				}
				continue
			}
			if got < want[v] || float64(got) > (1+eps)*float64(want[v])+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: broadcast delivers every record to every node exactly once.
func TestBroadcastCompletenessProperty(t *testing.T) {
	prop := func(nRaw uint8, mRaw uint8, seed int64) bool {
		n := 3 + int(nRaw)%30
		g, err := (gen.Random{N: n, P: 0.1, Seed: seed}).Graph()
		if err != nil {
			return false
		}
		net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
		if err != nil {
			return false
		}
		tree, err := BuildTree(net, 0)
		if err != nil {
			return false
		}
		total := 0
		values := make([][][]int64, n)
		for v := 0; v < n && total < int(mRaw)%20; v++ {
			values[v] = [][]int64{{int64(v)}}
			total++
		}
		out, err := Broadcast(net, tree, values)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if len(out[v]) != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: plain weighted relaxation handles zero-weight edges exactly
// (they are data, not delays).
func TestMultiBFSZeroWeightsProperty(t *testing.T) {
	prop := func(nRaw uint8, seed int64) bool {
		n := 4 + int(nRaw)%20
		g, err := (gen.Random{N: n, P: 0.2, Weighted: true, MaxW: 5, Seed: seed}).Graph()
		if err != nil {
			return false
		}
		// Zero out every third edge.
		zg, err := g.ScaleWeights(func(w int64) int64 { return w % 3 })
		if err != nil {
			return false
		}
		net, err := congest.NewNetwork(zg, congest.Options{Seed: seed})
		if err != nil {
			return false
		}
		res, err := RunMultiBFS(net, MultiBFSSpec{
			Sources: []int{0}, Dir: Undirected,
			Length: func(a graph.Arc) int64 { return a.Weight },
		})
		if err != nil {
			return false
		}
		want := seq.Dijkstra(zg, 0)
		for v := 0; v < n; v++ {
			if res.Dist[v][0] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
