package proto

import (
	"testing"

	"congestmwc/internal/gen"
	"congestmwc/internal/seq"
)

func TestSubstrateRegistry(t *testing.T) {
	names := SubstrateNames()
	want := []string{"bellman-ford", "bfs", "scaled"}
	if len(names) != len(want) {
		t.Fatalf("SubstrateNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("SubstrateNames = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		s, ok := SubstrateByName(n)
		if !ok {
			t.Fatalf("SubstrateByName(%q) missing", n)
		}
		if s.Name() != n {
			t.Errorf("substrate %q reports name %q", n, s.Name())
		}
	}
	if _, ok := SubstrateByName("dijkstra"); ok {
		t.Error("unregistered substrate resolved")
	}
}

func TestDefaultSubstrate(t *testing.T) {
	if s := DefaultSubstrate(false, 0); s.Name() != "bfs" {
		t.Errorf("unweighted default = %q, want bfs", s.Name())
	}
	if s := DefaultSubstrate(true, 0.25); s.Name() != "scaled" {
		t.Errorf("weighted eps default = %q, want scaled", s.Name())
	}
	if s := DefaultSubstrate(true, 0); s.Name() != "bellman-ford" {
		t.Errorf("weighted exact default = %q, want bellman-ford", s.Name())
	}
}

func TestBFSAndBellmanFordAgreeUnweighted(t *testing.T) {
	g, err := (gen.Random{N: 40, P: 0.1, Seed: 5}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{0, 3, 17}
	spec := HopDistSpec{Sources: sources, Dir: Undirected}
	a, err := BFSSubstrate{}.Run(newNet(t, g), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BellmanFordSubstrate{}.Run(newNet(t, g), spec)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for i := range sources {
			if a.Dist[v][i] != b.Dist[v][i] {
				t.Fatalf("dist[%d][%d]: bfs %d vs bellman-ford %d", v, i, a.Dist[v][i], b.Dist[v][i])
			}
		}
	}
}

func TestBellmanFordExactWeighted(t *testing.T) {
	g, err := (gen.Random{N: 36, P: 0.12, Weighted: true, MaxW: 9, Seed: 8}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{2, 11}
	res, err := BellmanFordSubstrate{}.Run(newNet(t, g), HopDistSpec{Sources: sources, Dir: Undirected})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		want := seq.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Fatalf("dist[%d] from %d = %d, want %d", v, s, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestBellmanFordWeightBoundPrunes(t *testing.T) {
	g, err := (gen.Random{N: 36, P: 0.12, Weighted: true, MaxW: 9, Seed: 8}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	const bound = 12
	res, err := BellmanFordSubstrate{}.Run(newNet(t, g), HopDistSpec{
		Sources: []int{2}, Dir: Undirected, Bound: bound,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Dijkstra(g, 2)
	for v := 0; v < g.N(); v++ {
		switch {
		case want[v] <= bound && res.Dist[v][0] != want[v]:
			t.Fatalf("dist[%d] = %d, want %d (within bound)", v, res.Dist[v][0], want[v])
		case want[v] > bound && res.Dist[v][0] < seq.Inf:
			t.Fatalf("dist[%d] = %d survived bound %d (true %d)", v, res.Dist[v][0], bound, want[v])
		}
	}
}

func TestScaledSubstrateRatioAndBound(t *testing.T) {
	g, err := (gen.Random{N: 36, P: 0.12, Weighted: true, MaxW: 9, Seed: 4}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.5
	res, err := ScaledSubstrate{}.Run(newNet(t, g), HopDistSpec{
		Sources: []int{0}, Dir: Undirected, Eps: eps,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Dijkstra(g, 0)
	for v := 0; v < g.N(); v++ {
		d := res.Dist[v][0]
		if want[v] >= seq.Inf {
			if d < seq.Inf {
				t.Fatalf("dist[%d] = %d for unreachable node", v, d)
			}
			continue
		}
		if d < want[v] {
			t.Fatalf("dist[%d] = %d below true %d", v, d, want[v])
		}
		if float64(d) > (1+eps)*float64(want[v])+1 {
			t.Fatalf("dist[%d] = %d exceeds (1+eps) * %d", v, d, want[v])
		}
	}
	bounded, err := ScaledSubstrate{}.Run(newNet(t, g), HopDistSpec{
		Sources: []int{0}, Dir: Undirected, Eps: eps, Bound: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if d := bounded.Dist[v][0]; d > 5 && d < seq.Inf {
			t.Fatalf("bounded dist[%d] = %d survived bound 5", v, d)
		}
	}
}

func TestSubstrateClassGuards(t *testing.T) {
	wg, err := (gen.Random{N: 12, P: 0.3, Weighted: true, MaxW: 9, Seed: 1}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (BFSSubstrate{}).Run(newNet(t, wg), HopDistSpec{Sources: []int{0}, Dir: Undirected}); err == nil {
		t.Error("bfs substrate accepted a weighted graph")
	}
	ug, err := (gen.Random{N: 12, P: 0.3, Seed: 1}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (ScaledSubstrate{}).Run(newNet(t, ug), HopDistSpec{Sources: []int{0}, Dir: Undirected}); err == nil {
		t.Error("scaled substrate accepted eps = 0")
	}
	if (BFSSubstrate{}).Supports(true) || !(BFSSubstrate{}).Supports(false) {
		t.Error("bfs Supports wrong")
	}
	if !(BellmanFordSubstrate{}).Supports(true) || !(BellmanFordSubstrate{}).Supports(false) {
		t.Error("bellman-ford Supports wrong")
	}
	if !(ScaledSubstrate{}).Supports(true) || (ScaledSubstrate{}).Supports(false) {
		t.Error("scaled Supports wrong")
	}
}
