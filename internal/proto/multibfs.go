package proto

import (
	"fmt"

	"congestmwc/internal/congest"
	"congestmwc/internal/graph"
	"congestmwc/internal/seq"
)

// Direction selects how distance propagation relates to the input graph's
// arc orientations.
type Direction int

// Traversal directions.
const (
	// Forward follows arc directions: the result is d(source -> v).
	Forward Direction = iota + 1
	// Backward follows reversed arcs: the result is d(v -> source) of the
	// original graph, i.e. BFS in the reversed graph.
	Backward
	// Undirected ignores orientations.
	Undirected
)

// MultiBFSSpec describes one run of the pipelined multi-source BFS / SSSP
// substrate (Lenzen-Patt-Shamir style source detection, [37] in the paper).
//
// The protocol maintains at every node a distance estimate per field
// (source). Estimates relax over arcs; each node forwards at most one
// (field, dist) pair per round per link, smallest pair first. FIFO links
// pipeline the waves, giving the O(k+h) behaviour for k-source hop-h BFS.
type MultiBFSSpec struct {
	// Sources lists the source vertices; field i corresponds to Sources[i].
	// The source list is global knowledge (in the paper it is derived from
	// shared randomness or is the full vertex set).
	Sources []int
	// InitDist optionally overrides the initial estimates: InitDist[v][i]
	// is node v's starting estimate for field i (seq.Inf when absent).
	// When set, Sources only labels the fields and may even be nil if
	// Fields is set. Used to propagate already-known values (e.g. line 9 of
	// Algorithm 1 floods d(u,s) from sampled vertices).
	InitDist [][]int64
	// Fields is the number of fields when InitDist is used with nil
	// Sources.
	Fields int
	// Dir is the traversal direction.
	Dir Direction
	// Bound caps recorded distances: estimates above Bound are discarded
	// (the h-hop / h-weight restriction). <= 0 means unbounded.
	Bound int64
	// TopSigma, when positive, stops a node from forwarding pairs that do
	// not rank among the sigma lexicographically smallest (dist, field)
	// pairs it knows — the source-detection cutoff used for the
	// sqrt(n)-neighbourhood computation of Section 4.
	TopSigma int
	// Length gives each arc's length (clamped to >= 1); nil means unit
	// lengths (BFS).
	Length func(a graph.Arc) int64
	// Stretch selects the stretched-graph simulation of Section 5:
	// traversing an arc of length L takes L rounds, exactly as if the edge
	// were subdivided into unit edges simulated at the tail endpoint. When
	// false (plain weighted CONGEST), weights are data: every message
	// crosses its edge in one round and the protocol is the pipelined
	// distributed Bellman-Ford.
	Stretch bool
	// Budget caps the rounds of this run (<= 0: default).
	Budget int
}

// MultiBFSResult holds per-node distance fields.
type MultiBFSResult struct {
	// Dist[v][i] is the computed distance for field i at node v (seq.Inf
	// if unknown or beyond Bound).
	Dist [][]int64
	// Pred[v][i] is the neighbour from which v first obtained its final
	// estimate (-1 for none, e.g. at the source itself). Pred edges form,
	// per field, a tree of shortest paths.
	Pred [][]int32
	// Rounds consumed by this run.
	Rounds int
}

// pairHeap is a lazy min-heap of (dist, field) pairs pending forwarding,
// hand-rolled on the concrete element type: this is the hottest data
// structure of the whole simulator (one push per relaxation, one pop per
// Tick), and container/heap would box every element in an interface value —
// a heap allocation per operation. Pop order is deterministic regardless of
// internal layout because (dist, field) is a total order on the heap's
// contents (record never pushes the same field at the same distance twice).
type pairItem struct {
	dist  int64
	field int32
}

func (a pairItem) less(b pairItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.field < b.field
}

type pairHeap []pairItem

func (h *pairHeap) push(it pairItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *pairHeap) pop() pairItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && s[r].less(s[l]) {
			l = r
		}
		if !s[l].less(s[i]) {
			break
		}
		s[i], s[l] = s[l], s[i]
		i = l
	}
	*h = s
	return top
}

// delayedSend is one scheduled (stretched-edge) relaxation. It stores the
// pair's raw fields rather than a built message so the slice is pointer-free:
// the per-Tick flush loop copies these structs, and pointer-free structs copy
// without GC write barriers.
type delayedSend struct {
	fire  int
	dist  int64
	to    int32
	field int32
}

type bfsNode struct {
	congest.Base
	v      int
	spec   *MultiBFSSpec
	dist   []int64
	pred   []int32
	dirty  pairHeap
	pends  []delayedSend
	shared *MultiBFSResult
	// arcs/lens are the node's traversal arcs for spec.Dir and their
	// effective lengths, resolved once at Init: spec.Length is pure, so
	// evaluating it per send (the old code) only burned time — for the
	// scaled graphs of Section 5 that was a math.Pow per relaxation.
	arcs []graph.Arc
	lens []int64
}

func (b *bfsNode) record(field int32, d int64, from int32) bool {
	if b.spec.Bound > 0 && d > b.spec.Bound {
		return false
	}
	if d >= b.dist[field] {
		return false
	}
	b.dist[field] = d
	b.pred[field] = from
	b.dirty.push(pairItem{dist: d, field: field})
	return true
}

func (b *bfsNode) Init(nd *congest.Node) {
	b.arcs = arcsFor(nd, b.spec.Dir)
	b.lens = make([]int64, len(b.arcs))
	for i, a := range b.arcs {
		length := int64(1)
		if b.spec.Length != nil {
			l := b.spec.Length(a)
			switch {
			case b.spec.Stretch:
				// Stretched simulation: traversal takes max(1, l) rounds
				// and contributes the same to the distance.
				if l > 1 {
					length = l
				}
			case l >= 0:
				// Plain weighted relaxation: weights are data; zero is a
				// legal arc length.
				length = l
			}
		}
		b.lens[i] = length
	}
	k := len(b.dist)
	if b.spec.InitDist != nil {
		for i := 0; i < k; i++ {
			if d := b.spec.InitDist[b.v][i]; d < seq.Inf {
				b.record(int32(i), d, -1)
			}
		}
	} else {
		for i, s := range b.spec.Sources {
			if s == b.v {
				b.record(int32(i), 0, -1)
			}
		}
	}
	if len(b.dirty) > 0 {
		nd.WakeNext()
	}
}

func (b *bfsNode) Deliver(nd *congest.Node, d congest.Delivery) {
	if d.Msg.Tag != tagBFSPair {
		return
	}
	field := int32(d.Msg.Words[0])
	b.record(field, d.Msg.Words[1], int32(d.From))
}

// rank returns how many known (dist, field) pairs are lexicographically
// smaller than (d, f).
func (b *bfsNode) rank(d int64, f int32) int {
	count := 0
	for i, dd := range b.dist {
		if dd < d || (dd == d && int32(i) < f) {
			count++
		}
	}
	return count
}

func (b *bfsNode) Tick(nd *congest.Node) {
	now := nd.Round()
	// Flush due delayed sends (stretched-edge simulation).
	if len(b.pends) > 0 {
		rest := b.pends[:0]
		for _, p := range b.pends {
			if p.fire <= now {
				nd.SendTag(int(p.to), tagBFSPair, int64(p.field), p.dist)
			} else {
				rest = append(rest, p)
			}
		}
		b.pends = rest
	}
	// Forward the smallest still-valid dirty pair. Sends go through SendTag
	// with inline payloads: Send copies the words into the link arena, so the
	// variadic slice stays on the stack.
	forwarded := false
	for len(b.dirty) > 0 && !forwarded {
		it := b.dirty.pop()
		if it.dist != b.dist[it.field] {
			continue // stale entry
		}
		if b.spec.TopSigma > 0 && b.rank(it.dist, it.field) >= b.spec.TopSigma {
			continue // beyond the sigma nearest: do not forward
		}
		for i, a := range b.arcs {
			length := b.lens[i]
			nd2 := it.dist + length
			if b.spec.Bound > 0 && nd2 > b.spec.Bound {
				continue
			}
			if length == 1 || !b.spec.Stretch {
				nd.SendTag(a.To, tagBFSPair, int64(it.field), nd2)
			} else {
				fire := now + int(length) - 1
				b.pends = append(b.pends, delayedSend{fire: fire, dist: nd2, to: int32(a.To), field: it.field})
				nd.WakeAt(fire)
			}
		}
		forwarded = true
	}
	if len(b.dirty) > 0 {
		nd.WakeNext()
	}
	if len(b.pends) > 0 {
		// Earliest pending send keeps the node armed.
		minFire := b.pends[0].fire
		for _, p := range b.pends[1:] {
			if p.fire < minFire {
				minFire = p.fire
			}
		}
		nd.WakeAt(minFire)
	}
}

// RunMultiBFS executes the spec on the network and returns per-node
// distances and predecessors.
func RunMultiBFS(net *congest.Network, spec MultiBFSSpec) (*MultiBFSResult, error) {
	n := net.Graph().N()
	k := len(spec.Sources)
	if spec.InitDist != nil {
		if len(spec.InitDist) != n {
			return nil, fmt.Errorf("proto: InitDist has %d rows for %d nodes", len(spec.InitDist), n)
		}
		k = len(spec.InitDist[0])
	} else if k == 0 {
		return nil, fmt.Errorf("proto: no sources and no InitDist")
	}
	if spec.Fields > 0 && spec.Fields != k {
		return nil, fmt.Errorf("proto: Fields=%d inconsistent with %d fields", spec.Fields, k)
	}
	if spec.Dir == 0 {
		spec.Dir = Undirected
	}
	res := &MultiBFSResult{
		Dist: make([][]int64, n),
		Pred: make([][]int32, n),
	}
	progs := make([]congest.Program, n)
	nodes := make([]*bfsNode, n)
	for v := 0; v < n; v++ {
		dist := make([]int64, k)
		pred := make([]int32, k)
		for i := range dist {
			dist[i] = seq.Inf
			pred[i] = -1
		}
		nodes[v] = &bfsNode{v: v, spec: &spec, dist: dist, pred: pred, shared: res}
		res.Dist[v] = dist
		res.Pred[v] = pred
		progs[v] = nodes[v]
	}
	rounds, err := net.Run(progs, spec.Budget)
	res.Rounds = rounds
	if err != nil {
		return res, fmt.Errorf("multi-bfs: %w", err)
	}
	return res, nil
}
