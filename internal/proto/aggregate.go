package proto

import (
	"fmt"

	"congestmwc/internal/congest"
)

// AggregateOp is an associative, commutative reduction over int64 values,
// computable by convergecast.
type AggregateOp int

// Supported reductions.
const (
	OpMin AggregateOp = iota + 1
	OpMax
	OpSum
)

func (op AggregateOp) apply(a, b int64) int64 {
	switch op {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Convergecast reduces the per-node values with the given operation over
// the tree and broadcasts the result back down, in O(D) rounds; every node
// (and the caller) learns the result. This is the standard aggregate
// primitive of [43] used throughout the paper ("computed by a convergecast
// operation").
func Convergecast(net *congest.Network, tree *Tree, op AggregateOp, value []int64) (int64, error) {
	n := net.Graph().N()
	if len(value) != n {
		return 0, fmt.Errorf("proto: %d values for %d nodes", len(value), n)
	}
	switch op {
	case OpMin, OpMax, OpSum:
	default:
		return 0, fmt.Errorf("proto: unknown aggregate op %d", int(op))
	}
	agg := make([]int64, n)
	pending := make([]int, n)
	result := make([]int64, n)
	progs := make([]congest.Program, n)
	for v := 0; v < n; v++ {
		v := v
		up := func(nd *congest.Node) {
			if tree.Parent[v] >= 0 {
				nd.SendTag(tree.Parent[v], tagConvergeUp, agg[v])
				return
			}
			result[v] = agg[v]
			for _, c := range tree.Children[v] {
				nd.SendTag(c, tagConvergeDown, agg[v])
			}
		}
		progs[v] = congest.Funcs{
			OnInit: func(nd *congest.Node) {
				agg[v] = value[v]
				pending[v] = len(tree.Children[v])
				if pending[v] == 0 {
					up(nd)
				}
			},
			OnDeliver: func(nd *congest.Node, d congest.Delivery) {
				switch d.Msg.Tag {
				case tagConvergeUp:
					agg[v] = op.apply(agg[v], d.Msg.Words[0])
					pending[v]--
					if pending[v] == 0 {
						up(nd)
					}
				case tagConvergeDown:
					result[v] = d.Msg.Words[0]
					for _, c := range tree.Children[v] {
						nd.SendTag(c, tagConvergeDown, d.Msg.Words[0])
					}
				}
			},
		}
	}
	if _, err := net.Run(progs, 0); err != nil {
		return 0, fmt.Errorf("convergecast: %w", err)
	}
	return result[tree.Root], nil
}
