package proto

import (
	"fmt"
	"math"
	"math/rand"

	"congestmwc/internal/congest"
	"congestmwc/internal/graph"
	"congestmwc/internal/seq"
)

// Sample returns the deterministic shared-randomness sample of {0..n-1}
// with the given inclusion probability: every node of the network computes
// the same set locally from the shared seed (the model grants shared
// randomness; see Section 1.4 of the paper). The salt separates independent
// samples drawn from the same network seed.
func Sample(n int, prob float64, seed, salt int64) []int {
	rng := rand.New(rand.NewSource(seed*7_777_777 + salt))
	var out []int
	for v := 0; v < n; v++ {
		if rng.Float64() < prob {
			out = append(out, v)
		}
	}
	return out
}

// SampleProb returns the canonical sampling probability Theta(log n / h)
// used by the paper's long-cycle arguments: with this probability, any path
// of h hops contains a sampled vertex w.h.p. in n. factor tunes the
// constant.
func SampleProb(n, h int, factor float64) float64 {
	if h <= 0 {
		return 1
	}
	p := factor * math.Log(float64(n)+2) / float64(h)
	if p > 1 {
		return 1
	}
	return p
}

// ApproxHopSSSPSpec describes a (1+eps)-approximate h-hop-bounded multi-
// source SSSP computation on a weighted graph, implemented with the scaling
// technique of Section 5 ([41]): for each scale level i, run the unit-length
// multi-source BFS on the stretched scaled graph G^i (edge weight w becomes
// a ceil(2hw/(eps 2^i))-round traversal simulated at the tail endpoint) with
// hop budget h* = (1+2/eps)h, then take the per-pair minimum of the
// rescaled results.
//
// The returned estimates d' satisfy d <= d' and, for every pair whose
// shortest path has at most H arcs, d' <= (1+eps) d (w.h.p. exact level
// selection is deterministic, so this is a certainty, not a probability).
type ApproxHopSSSPSpec struct {
	// Sources lists the source vertices (global knowledge).
	Sources []int
	// InitDist optionally seeds estimates as in MultiBFSSpec (original
	// weight scale); when set, Sources only labels fields.
	InitDist [][]int64
	// H is the arc budget of the paths to approximate.
	H int
	// Eps is the accuracy parameter (> 0).
	Eps float64
	// Dir is the traversal direction.
	Dir Direction
	// Budget caps rounds per level (<= 0: default).
	Budget int
}

// RunApproxHopSSSP executes the spec. The input graph must be weighted (use
// plain RunMultiBFS for unweighted graphs, which is exact and cheaper).
func RunApproxHopSSSP(net *congest.Network, spec ApproxHopSSSPSpec) (*MultiBFSResult, error) {
	g := net.Graph()
	if spec.H <= 0 {
		return nil, fmt.Errorf("proto: approx SSSP needs positive hop budget, got %d", spec.H)
	}
	if spec.Eps <= 0 {
		return nil, fmt.Errorf("proto: approx SSSP needs positive eps, got %v", spec.Eps)
	}
	sc, err := graph.NewScaling(spec.H, spec.Eps, g.MaxWeight())
	if err != nil {
		return nil, fmt.Errorf("proto: %w", err)
	}
	n := g.N()
	k := len(spec.Sources)
	if spec.InitDist != nil {
		if len(spec.InitDist) != n {
			return nil, fmt.Errorf("proto: InitDist has %d rows for %d nodes", len(spec.InitDist), n)
		}
		k = len(spec.InitDist[0])
	}
	if k == 0 {
		return nil, fmt.Errorf("proto: no sources")
	}
	best := &MultiBFSResult{
		Dist: make([][]int64, n),
		Pred: make([][]int32, n),
	}
	for v := 0; v < n; v++ {
		best.Dist[v] = make([]int64, k)
		best.Pred[v] = make([]int32, k)
		for i := 0; i < k; i++ {
			best.Dist[v][i] = seq.Inf
			best.Pred[v][i] = -1
		}
	}
	hstar := int64(sc.HopBudget())
	for level := 1; level <= sc.Levels(); level++ {
		level := level
		sub := MultiBFSSpec{
			Sources: spec.Sources,
			Dir:     spec.Dir,
			Bound:   hstar,
			Stretch: true,
			Budget:  spec.Budget,
			Length: func(a graph.Arc) int64 {
				return sc.ScaleWeight(a.Weight, level)
			},
		}
		if spec.InitDist != nil {
			sub.Sources = spec.Sources
			sub.InitDist = make([][]int64, n)
			for v := 0; v < n; v++ {
				row := make([]int64, k)
				for i := 0; i < k; i++ {
					row[i] = seq.Inf
					if d := spec.InitDist[v][i]; d < seq.Inf {
						s := sc.ScaleWeight(d, level)
						if s <= hstar {
							row[i] = s
						}
					}
				}
				sub.InitDist[v] = row
			}
		}
		res, err := RunMultiBFS(net, sub)
		if err != nil {
			return nil, fmt.Errorf("proto: scaled level %d: %w", level, err)
		}
		for v := 0; v < n; v++ {
			for i := 0; i < k; i++ {
				if res.Dist[v][i] >= seq.Inf {
					continue
				}
				est := int64(math.Ceil(sc.Unscale(res.Dist[v][i], level)))
				if est < best.Dist[v][i] {
					best.Dist[v][i] = est
					best.Pred[v][i] = res.Pred[v][i]
				}
			}
		}
		best.Rounds += res.Rounds
	}
	return best, nil
}
