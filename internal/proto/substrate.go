package proto

import (
	"fmt"
	"sort"
	"sync"

	"congestmwc/internal/congest"
	"congestmwc/internal/graph"
	"congestmwc/internal/seq"
)

// HopDistSpec describes one multi-source bounded-distance computation in
// substrate-neutral terms. It is the contract of the pluggable-SSSP seam:
// MWC algorithms describe WHAT distances they need (sources, direction,
// hop budget, weight bound), a Substrate decides HOW to compute them.
type HopDistSpec struct {
	// Sources lists the source vertices; field i of the result corresponds
	// to Sources[i].
	Sources []int
	// H is the hop budget: only paths of at most H arcs need to be
	// represented (0 = unbounded). Substrates that relax to a fixpoint
	// (Bellman-Ford) may return shorter paths with more hops; that is
	// always sound for distance consumers.
	H int
	// Bound caps recorded distances by weight: estimates above Bound are
	// discarded (<= 0 = unbounded). Callers use it for candidate-driven
	// pruning: once an upper bound U on the answer is known, distances
	// beyond U cannot contribute.
	Bound int64
	// Eps is the accuracy parameter for approximate substrates; exact
	// substrates ignore it.
	Eps float64
	// Dir is the traversal direction.
	Dir Direction
	// Budget caps the rounds of the run (<= 0: default).
	Budget int
}

// Substrate is one interchangeable multi-source shortest-path engine on the
// CONGEST simulator. Substrates register themselves by name so planners and
// CLIs can select them per run without the MWC logic knowing which engines
// exist.
type Substrate interface {
	// Name identifies the substrate in registries, specs and logs.
	Name() string
	// Exact reports whether returned distances are exact (required by
	// exact MWC algorithms; approximate substrates return (1+eps) bounds).
	Exact() bool
	// Supports reports whether the substrate handles the given edge-weight
	// regime (weighted = general non-negative weights; unweighted = unit).
	Supports(weighted bool) bool
	// Run computes the distances. Result fields follow MultiBFSResult
	// conventions: Dist[v][i] approximates d(Sources[i], v) (direction per
	// spec.Dir), Pred[v][i] is the final edge of the realized path.
	Run(net *congest.Network, spec HopDistSpec) (*MultiBFSResult, error)
}

// UnitWeights reports whether every arc of the graph has length exactly 1
// under the weighted semantics — the regime where hop counting and weighted
// distance coincide. Note that MaxWeight() == 1 alone is NOT enough: a
// weighted graph may mix weight-0 and weight-1 edges, and treating it as
// unit-weight silently miscomputes distances (hence minimum weight cycles).
func UnitWeights(g *graph.Graph) bool {
	if !g.Weighted() {
		return true
	}
	if g.MaxWeight() > 1 {
		return false
	}
	for v := 0; v < g.N(); v++ {
		for _, a := range g.Out(v) {
			if a.Weight != 1 {
				return false
			}
		}
	}
	return true
}

// combineBounds merges two upper bounds where 0 means "unbounded".
func combineBounds(a, b int64) int64 {
	if a <= 0 {
		return b
	}
	if b <= 0 || a < b {
		return a
	}
	return b
}

// BFSSubstrate is the pipelined multi-source BFS (Lenzen-Patt-Shamir source
// detection): exact on unweighted graphs, O(k+h) rounds for k sources and
// hop budget h.
type BFSSubstrate struct{}

// Name implements Substrate.
func (BFSSubstrate) Name() string { return "bfs" }

// Exact implements Substrate.
func (BFSSubstrate) Exact() bool { return true }

// Supports implements Substrate: unit lengths only.
func (BFSSubstrate) Supports(weighted bool) bool { return !weighted }

// Run implements Substrate.
func (BFSSubstrate) Run(net *congest.Network, spec HopDistSpec) (*MultiBFSResult, error) {
	if !UnitWeights(net.Graph()) {
		return nil, fmt.Errorf("proto: bfs substrate needs unit weights")
	}
	// Unit lengths make hops and weight the same measure.
	return RunMultiBFS(net, MultiBFSSpec{
		Sources: spec.Sources,
		Dir:     spec.Dir,
		Bound:   combineBounds(int64(spec.H), spec.Bound),
		Budget:  spec.Budget,
	})
}

// BellmanFordSubstrate is the pipelined distributed Bellman-Ford (plain
// weighted CONGEST: weights are data, every message crosses its edge in one
// round). It is exact on any non-negative weights, including zero, at the
// cost of worse worst-case round bounds than the scaled engine — the right
// trade for exact MWC algorithms and for moderate-weight instances.
type BellmanFordSubstrate struct{}

// Name implements Substrate.
func (BellmanFordSubstrate) Name() string { return "bellman-ford" }

// Exact implements Substrate.
func (BellmanFordSubstrate) Exact() bool { return true }

// Supports implements Substrate: any weight regime.
func (BellmanFordSubstrate) Supports(weighted bool) bool { return true }

// Run implements Substrate. The hop budget is honoured exactly on
// unweighted graphs (hops == weight there); on weighted graphs relaxation
// runs to a fixpoint under the weight Bound only, which can only produce
// shorter (still exact) distances than an H-hop truncation.
func (BellmanFordSubstrate) Run(net *congest.Network, spec HopDistSpec) (*MultiBFSResult, error) {
	g := net.Graph()
	sub := MultiBFSSpec{
		Sources: spec.Sources,
		Dir:     spec.Dir,
		Bound:   spec.Bound,
		Budget:  spec.Budget,
	}
	if g.Weighted() {
		sub.Length = func(a graph.Arc) int64 { return a.Weight }
	} else {
		sub.Bound = combineBounds(int64(spec.H), spec.Bound)
	}
	return RunMultiBFS(net, sub)
}

// ScaledSubstrate is the (1+eps)-approximate h-hop SSSP of Section 5
// (scaling levels over the stretched-graph simulation). It is the paper's
// weighted substrate: sublinear-friendly round bounds, approximate answers.
type ScaledSubstrate struct{}

// Name implements Substrate.
func (ScaledSubstrate) Name() string { return "scaled" }

// Exact implements Substrate.
func (ScaledSubstrate) Exact() bool { return false }

// Supports implements Substrate: weighted graphs only (plain BFS is exact
// and cheaper on unit weights).
func (ScaledSubstrate) Supports(weighted bool) bool { return weighted }

// Run implements Substrate. A zero hop budget defaults to n (all simple
// paths). The weight Bound is applied as a post-filter: pruning inside the
// scaled levels would interact with the (1+eps) rounding, so the levels run
// under their own hop-budget bound and estimates above Bound are dropped
// afterwards.
func (ScaledSubstrate) Run(net *congest.Network, spec HopDistSpec) (*MultiBFSResult, error) {
	if spec.Eps <= 0 {
		return nil, fmt.Errorf("proto: scaled substrate needs eps > 0")
	}
	h := spec.H
	if h <= 0 {
		h = net.Graph().N()
	}
	res, err := RunApproxHopSSSP(net, ApproxHopSSSPSpec{
		Sources: spec.Sources,
		H:       h,
		Eps:     spec.Eps,
		Dir:     spec.Dir,
		Budget:  spec.Budget,
	})
	if err != nil {
		return nil, err
	}
	if spec.Bound > 0 {
		for v := range res.Dist {
			for i, d := range res.Dist[v] {
				if d > spec.Bound && d < seq.Inf {
					res.Dist[v][i] = seq.Inf
					res.Pred[v][i] = -1
				}
			}
		}
	}
	return res, nil
}

var (
	substrateMu sync.RWMutex
	substrates  = map[string]Substrate{}
)

// RegisterSubstrate adds a substrate to the registry. It panics on a
// duplicate name: registration happens at init time and a clash is a
// programming error.
func RegisterSubstrate(s Substrate) {
	substrateMu.Lock()
	defer substrateMu.Unlock()
	if _, dup := substrates[s.Name()]; dup {
		panic(fmt.Sprintf("proto: duplicate substrate %q", s.Name()))
	}
	substrates[s.Name()] = s
}

// SubstrateByName looks a substrate up by its registered name.
func SubstrateByName(name string) (Substrate, bool) {
	substrateMu.RLock()
	defer substrateMu.RUnlock()
	s, ok := substrates[name]
	return s, ok
}

// SubstrateNames lists the registered substrate names, sorted.
func SubstrateNames() []string {
	substrateMu.RLock()
	defer substrateMu.RUnlock()
	names := make([]string, 0, len(substrates))
	for name := range substrates {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultSubstrate returns the class-default engine: exact BFS for
// unweighted graphs; for weighted graphs the scaled (1+eps) engine when an
// accuracy parameter is given, exact Bellman-Ford otherwise.
func DefaultSubstrate(weighted bool, eps float64) Substrate {
	if !weighted {
		return BFSSubstrate{}
	}
	if eps > 0 {
		return ScaledSubstrate{}
	}
	return BellmanFordSubstrate{}
}

func init() {
	RegisterSubstrate(BFSSubstrate{})
	RegisterSubstrate(BellmanFordSubstrate{})
	RegisterSubstrate(ScaledSubstrate{})
}
