// Package proto implements the reusable distributed protocol substrates the
// paper's algorithms are built from, each as CONGEST node programs on the
// simulator in internal/congest:
//
//   - BFS spanning-tree construction over the communication graph (O(D)),
//   - convergecast of an associative aggregate and broadcast of the result
//     (O(D)), the standard primitives of Peleg's book cited as [43],
//   - broadcast of M values to all nodes in O(M+D) via tree pipelining,
//   - pipelined multi-source BFS / SSSP (source detection in the style of
//     Lenzen-Patt-Shamir [37]), the workhorse of Algorithms 1-3: exact
//     hop/distance-bounded distances from k sources in O(k+h) rounds, with
//     optional per-arc lengths (stretched scaled graphs, Section 5) and a
//     top-sigma cutoff (the sqrt(n)-nearest-neighbourhood computation of
//     Section 4).
package proto

import (
	"fmt"

	"congestmwc/internal/congest"
	"congestmwc/internal/graph"
)

// Protocol message tags. Each protocol uses its own tag space; tags are
// per-message and do not need to be globally unique across phases because
// phases run back-to-back to quiescence.
const (
	tagTreeExplore int64 = iota + 1
	tagTreeChild
	tagConvergeUp
	tagConvergeDown
	tagBroadcastVal
	tagBFSPair
)

// Tree is a rooted spanning tree of the communication graph, the result of
// BuildTree. Parent[root] == -1.
type Tree struct {
	Root     int
	Parent   []int
	Depth    []int
	Children [][]int
	// Height is the tree height: the eccentricity of the root in the
	// communication graph (BFS depth equals distance), hence at most D and
	// at least D/2 — the standard distributed proxy for the diameter.
	Height int
}

// BuildTree constructs a BFS spanning tree rooted at root over the
// communication graph in O(D) rounds. Every node learns its parent, depth
// and children.
func BuildTree(net *congest.Network, root int) (*Tree, error) {
	n := net.Graph().N()
	t := &Tree{
		Root:     root,
		Parent:   make([]int, n),
		Depth:    make([]int, n),
		Children: make([][]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Depth[i] = -1
	}
	progs := make([]congest.Program, n)
	for v := 0; v < n; v++ {
		v := v
		progs[v] = congest.Funcs{
			OnInit: func(nd *congest.Node) {
				if v == root {
					t.Depth[v] = 0
					for _, u := range nd.Neighbors() {
						nd.SendTag(u, tagTreeExplore, 0)
					}
				}
			},
			OnDeliver: func(nd *congest.Node, d congest.Delivery) {
				switch d.Msg.Tag {
				case tagTreeExplore:
					if t.Depth[v] >= 0 {
						return
					}
					t.Depth[v] = int(d.Msg.Words[0]) + 1
					t.Parent[v] = d.From
					nd.SendTag(d.From, tagTreeChild)
					for _, u := range nd.Neighbors() {
						if u != d.From {
							nd.SendTag(u, tagTreeExplore, int64(t.Depth[v]))
						}
					}
				case tagTreeChild:
					t.Children[v] = append(t.Children[v], d.From)
				}
			},
		}
	}
	if _, err := net.Run(progs, 0); err != nil {
		return nil, fmt.Errorf("build tree: %w", err)
	}
	for v := 0; v < n; v++ {
		if t.Depth[v] > t.Height {
			t.Height = t.Depth[v]
		}
	}
	return t, nil
}

// ConvergecastMin computes min over the per-node int64 values and makes the
// result known to every node, in O(D) rounds (up the tree, then down). It
// is Convergecast with OpMin, kept as a named helper because it is the
// paper's most common aggregate.
func ConvergecastMin(net *congest.Network, tree *Tree, value []int64) (int64, error) {
	return Convergecast(net, tree, OpMin, value)
}

// Broadcast disseminates per-node value records to every node in O(M+D)
// rounds, where M is the total number of records: records are upcast to the
// root through the tree (pipelined by the transport) and flooded back down.
// Every record is a fixed-width word tuple. Returns, for each node, the
// records it received (every node receives all M records, including its
// own, in the same canonical order... the order records arrive at the root).
func Broadcast(net *congest.Network, tree *Tree, values [][][]int64) ([][][]int64, error) {
	n := net.Graph().N()
	out := make([][][]int64, n)
	progs := make([]congest.Program, n)
	for v := 0; v < n; v++ {
		v := v
		down := func(nd *congest.Node, rec []int64) {
			// rec may be a delivered payload, valid only inside this
			// handler — copy before retaining it in the result.
			cp := make([]int64, len(rec))
			copy(cp, rec)
			out[v] = append(out[v], cp)
			for _, c := range tree.Children[v] {
				nd.Send(c, congest.Msg{Tag: tagBroadcastVal, Words: cp})
			}
		}
		progs[v] = congest.Funcs{
			OnInit: func(nd *congest.Node) {
				for _, rec := range values[v] {
					if v == tree.Root {
						down(nd, rec)
						continue
					}
					nd.Send(tree.Parent[v], congest.Msg{Tag: tagBroadcastVal, Words: rec})
				}
			},
			OnDeliver: func(nd *congest.Node, d congest.Delivery) {
				if d.Msg.Tag != tagBroadcastVal {
					return
				}
				if tree.Parent[v] >= 0 && d.From != tree.Parent[v] {
					// Upward-bound record from a child: forward toward root.
					nd.Send(tree.Parent[v], congest.Msg{Tag: tagBroadcastVal, Words: d.Msg.Words})
					return
				}
				if v == tree.Root {
					down(nd, d.Msg.Words)
					return
				}
				// From parent: record has been seen by the root, flood down.
				down(nd, d.Msg.Words)
			},
		}
	}
	if _, err := net.Run(progs, 0); err != nil {
		return nil, fmt.Errorf("broadcast: %w", err)
	}
	return out, nil
}

// arcsFor returns the arcs along which a node propagates for the given
// traversal direction. Propagating "Forward" means distances follow the
// input graph's arc directions, so a node forwards along its Out arcs;
// Backward follows reversed arcs (used for BFS in the reversed graph);
// Undirected treats every incident edge as traversable both ways.
func arcsFor(nd *congest.Node, dir Direction) []graph.Arc {
	switch dir {
	case Forward:
		return nd.Out()
	case Backward:
		return nd.In()
	default:
		return commArcs(nd)
	}
}

func commArcs(nd *congest.Node) []graph.Arc {
	// For undirected graphs Out already contains every incident edge. For
	// directed graphs traversed undirectedly, combine Out and In.
	if !nd.Directed() {
		return nd.Out()
	}
	arcs := make([]graph.Arc, 0, len(nd.Out())+len(nd.In()))
	arcs = append(arcs, nd.Out()...)
	arcs = append(arcs, nd.In()...)
	return arcs
}
