package ksssp

import (
	"testing"

	"congestmwc/internal/congest"
	"congestmwc/internal/gen"
	"congestmwc/internal/graph"
	"congestmwc/internal/proto"
	"congestmwc/internal/seq"
)

func newNet(t *testing.T, g *graph.Graph, seed int64) *congest.Network {
	t.Helper()
	net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRunExactDirectedBFS(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := (gen.Random{N: 80, P: 0.05, Directed: true, Seed: seed}).Graph()
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, g, seed+100)
		sources := []int{0, 5, 17, 33, 52, 79}
		res, err := Run(net, Spec{Sources: sources})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sources {
			want := seq.BFS(g, s)
			for v := 0; v < g.N(); v++ {
				if res.Dist[v][i] != want[v] {
					t.Errorf("seed %d src %d v %d: dist %d, want %d",
						seed, s, v, res.Dist[v][i], want[v])
				}
			}
		}
	}
}

func TestRunExactSmallHopParameter(t *testing.T) {
	// Force a small h so the skeleton path (steps 3-6) is actually
	// exercised: distances longer than h hops must still come out exact.
	g, err := (gen.Random{N: 100, P: 0.004, Directed: true, Seed: 7}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g, 42)
	sources := []int{0, 50}
	res, err := Run(net, Spec{Sources: sources, H: 6, SampleFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	longPairs := 0
	for i, s := range sources {
		want := seq.BFS(g, s)
		for v := 0; v < g.N(); v++ {
			if want[v] > 6 && want[v] < seq.Inf {
				longPairs++
			}
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d (hops > h path)",
					s, v, res.Dist[v][i], want[v])
			}
		}
	}
	if longPairs == 0 {
		t.Fatal("test instance has no > h-hop pairs; skeleton path not exercised")
	}
}

func TestRunBackward(t *testing.T) {
	g, err := (gen.Random{N: 60, P: 0.05, Directed: true, Seed: 3}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g, 9)
	sources := []int{2, 31}
	res, err := Run(net, Spec{Sources: sources, Dir: proto.Backward, H: 8, SampleFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	rev := g.Reverse()
	for i, s := range sources {
		want := seq.BFS(rev, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestRunWeightedApprox(t *testing.T) {
	const eps = 0.5
	for seed := int64(0); seed < 3; seed++ {
		g, err := (gen.Random{N: 50, P: 0.06, Directed: true, Weighted: true,
			MaxW: 20, Seed: seed}).Graph()
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, g, seed)
		sources := []int{0, 10, 25}
		res, err := Run(net, Spec{Sources: sources, Eps: eps, SampleFactor: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sources {
			want := seq.Dijkstra(g, s)
			for v := 0; v < g.N(); v++ {
				got := res.Dist[v][i]
				if want[v] >= seq.Inf {
					if got < seq.Inf {
						t.Errorf("src %d v %d: got %d for unreachable", s, v, got)
					}
					continue
				}
				if got < want[v] {
					t.Errorf("src %d v %d: underestimate %d < %d", s, v, got, want[v])
				}
				// +2 absorbs the per-level integer rounding on tiny distances.
				if float64(got) > (1+eps)*float64(want[v])+2 {
					t.Errorf("src %d v %d: %d exceeds (1+eps)*%d", s, v, got, want[v])
				}
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := gen.Ring(6, true, false, 1)
	net := newNet(t, g, 1)
	if _, err := Run(net, Spec{}); err == nil {
		t.Error("no sources should fail")
	}
	if _, err := Run(net, Spec{Sources: []int{0}, Eps: 0.5}); err == nil {
		t.Error("eps on unweighted graph should fail")
	}
	wg := gen.Ring(6, true, true, 5)
	wnet := newNet(t, wg, 1)
	if _, err := Run(wnet, Spec{Sources: []int{0}}); err == nil {
		t.Error("weighted graph without eps should fail")
	}
}

func TestRunSequentialMatchesSeq(t *testing.T) {
	g, err := (gen.Random{N: 40, P: 0.08, Directed: true, Seed: 6}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g, 2)
	sources := []int{1, 20}
	res, err := RunSequential(net, Spec{Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		want := seq.BFS(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestSampleDistAndSkelDistConsistent(t *testing.T) {
	g, err := (gen.Random{N: 70, P: 0.05, Directed: true, Seed: 11}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g, 31)
	res, err := Run(net, Spec{Sources: []int{0, 1}, H: 7, SampleFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sampled) == 0 {
		t.Fatal("no sampled vertices")
	}
	// SampleDist must be exact h-hop-bounded distances; here just check it
	// never underestimates the true distance and is exact when within h.
	for j, s := range res.Sampled {
		want := seq.BFS(g, s)
		hop := seq.HopBounded(g, s, 7)
		for v := 0; v < g.N(); v++ {
			got := res.SampleDist[v][j]
			if got < want[v] {
				t.Errorf("sample %d v %d: %d underestimates %d", s, v, got, want[v])
			}
			if hop[v] < seq.Inf && got != hop[v] {
				t.Errorf("sample %d v %d: %d != h-hop %d", s, v, got, hop[v])
			}
		}
	}
	// Skeleton APSP distances must never underestimate true distances and
	// must be exact between sampled vertices (every shortest path segment
	// is covered by h-hop balls w.h.p. given the generous sample factor).
	for j, s := range res.Sampled {
		want := seq.BFS(g, s)
		for l, u := range res.Sampled {
			got := res.SkelDist[j][l]
			if got < want[u] {
				t.Errorf("skel %d->%d: %d underestimates %d", s, u, got, want[u])
			}
		}
	}
}

func TestAutoSelectsRegimes(t *testing.T) {
	g, err := (gen.Random{N: 64, P: 0.06, Directed: true, Seed: 8}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	// Large k (>= n^{1/3} = 4): Algorithm 1 path.
	many := []int{0, 8, 16, 24, 32, 40, 48, 56}
	net := newNet(t, g, 3)
	res, err := Auto(net, Spec{Sources: many})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range many {
		want := seq.BFS(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Fatalf("many: src %d v %d: %d != %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
	// Tiny k on a long path: the repeated-SSSP branch must still be exact.
	pg := gen.Path(80)
	pnet := newNet(t, pg, 4)
	res2, err := Auto(pnet, Spec{Sources: []int{5}, Dir: proto.Undirected})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.BFS(pg, 5)
	for v := 0; v < pg.N(); v++ {
		if res2.Dist[v][0] != want[v] {
			t.Fatalf("single: v %d: %d != %d", v, res2.Dist[v][0], want[v])
		}
	}
}

func TestRunWithExactWeightedSubstrate(t *testing.T) {
	// A weighted-capable exact substrate (pipelined Bellman-Ford) plugged
	// into the seam computes exact weighted k-source distances with no eps,
	// a configuration the default engines reject.
	g, err := (gen.Random{N: 60, P: 0.06, Weighted: true, MaxW: 9, Seed: 12}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g, 12)
	sources := []int{0, 9, 41}
	if _, err := Run(newNet(t, g, 12), Spec{Sources: sources}); err == nil {
		t.Fatal("weighted graph with eps = 0 and no substrate should be rejected")
	}
	res, err := Run(net, Spec{Sources: sources, Substrate: proto.BellmanFordSubstrate{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		want := seq.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}

func TestRunRejectsUnsupportedSubstrate(t *testing.T) {
	g, err := (gen.Random{N: 20, P: 0.2, Weighted: true, MaxW: 9, Seed: 3}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(newNet(t, g, 3), Spec{Sources: []int{0}, Substrate: proto.BFSSubstrate{}}); err == nil {
		t.Fatal("bfs substrate on a weighted graph should be rejected")
	}
}

func TestRunSequentialWithSubstrate(t *testing.T) {
	g, err := (gen.Random{N: 40, P: 0.08, Weighted: true, MaxW: 9, Seed: 5}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSequential(newNet(t, g, 5), Spec{
		Sources: []int{0, 7}, Substrate: proto.BellmanFordSubstrate{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []int{0, 7} {
		want := seq.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v][i] != want[v] {
				t.Errorf("src %d v %d: dist %d, want %d", s, v, res.Dist[v][i], want[v])
			}
		}
	}
}
