// Package ksssp implements Section 2 of the paper: multi-source BFS and
// approximate SSSP from k sources.
//
// For k >= n^(1/3) sources, Algorithm 1 computes exact directed BFS in
// O~(sqrt(nk) + D) rounds via a sampled skeleton graph:
//
//  1. sample S with probability Theta(log n / h), h = sqrt(nk);
//  2. h-hop BFS from every s in S (pipelined multi-source BFS, O(|S|+h));
//  3. build the skeleton graph on S (edge (s,t) iff an h-hop path s->t,
//     weighted by the h-hop distance) and broadcast its <= |S|^2 edges;
//  4. every node locally computes APSP on the skeleton;
//  5. h-hop BFS from the k sources (O(k+h)); sampled vertices reached
//     broadcast the <= k|S| distances d(u,s);
//  6. every node v locally combines: d(u,v) = min( d_h(u,v),
//     min_{s in S} [ min_t ( d_h(u,t) + skel(t,s) ) + d_h(s,v) ] ).
//
// Step 6 replaces the paper's lines 8-10 (propagating d(u,s) down the h-hop
// BFS trees of the sampled vertices): after the line-5/7 broadcasts, every
// vertex already holds all terms of the combination locally — v knows
// d_h(s,v) from step 2's BFS — so no further communication is required.
// The round complexity is dominated by the same terms either way.
//
// The weighted variant replaces each h-hop BFS with the (1+eps)-approximate
// h-hop SSSP of internal/proto (scaling per Section 5), giving
// (1+eps)-approximate k-source SSSP in O~(sqrt(nk) + D) rounds.
//
// For k < n^(1/3) the same algorithm with h = sqrt(nk) yields the
// O~(n/k + D) bound of Theorem 1.6.A (the |S|^2 = (n/h)^2 broadcast term
// dominates); the k*SSSP alternative of Theorem 1.6.A is the one-source-at-
// a-time loop exposed as RunSequential.
package ksssp

import (
	"fmt"
	"math"

	"congestmwc/internal/congest"
	"congestmwc/internal/proto"
	"congestmwc/internal/seq"
)

// PredUnknown marks a Result.Pred entry whose realized path does not end
// with a concrete edge known to the algorithm (see Result.Pred).
const PredUnknown int32 = -2

// Spec configures a k-source computation.
type Spec struct {
	// Sources are the k source vertices (global knowledge).
	Sources []int
	// H is the hop parameter; 0 selects sqrt(n*k) per Theorem 1.6.
	H int
	// Eps > 0 selects the weighted (1+eps)-approximate variant; it must be
	// 0 for unweighted graphs (which are computed exactly).
	Eps float64
	// SampleFactor tunes the Theta(log n / h) sampling constant (default 3).
	SampleFactor float64
	// Dir is the traversal direction (default Forward: d(source -> v)).
	Dir proto.Direction
	// Salt separates the shared-randomness sample from other phases run on
	// the same network seed.
	Salt int64
	// Substrate overrides the h-hop multi-source distance engine used for
	// the BFS steps (nil selects the class default: exact pipelined BFS
	// for unweighted graphs, the scaled (1+eps) engine for weighted ones).
	// This is the pluggable-SSSP seam: planners swap shortest-path engines
	// per run without the k-source skeleton knowing which engines exist.
	Substrate proto.Substrate
}

// Result holds the computed distances.
type Result struct {
	// Dist[v][i] is (an approximation of) d(Sources[i], v), seq.Inf when
	// unreachable. For Dir == Backward it is d(v, Sources[i]).
	Dist [][]int64
	// Pred[v][i] is the final edge of the realized path for Dist[v][i]:
	// the neighbour preceding v. It is -1 at the source itself and
	// PredUnknown when the path's final segment degenerates at a sampled
	// vertex (the combination then ends inside the skeleton). Predecessors
	// are used by cycle-candidate computations to exclude degenerate
	// closed walks.
	Pred [][]int32
	// Sampled is the skeleton sample S used.
	Sampled []int
	// SampleDist[v][j] is the h-hop-bounded distance d(Sampled[j], v)
	// (same direction convention as Dist), a by-product reused by the MWC
	// algorithms.
	SampleDist [][]int64
	// SkelDist[j][l] is the skeleton-graph APSP distance from Sampled[j]
	// to Sampled[l] (unbounded hops), also reused by MWC algorithms.
	SkelDist [][]int64
	// Rounds consumed.
	Rounds int
}

// Run executes Algorithm 1 (or its weighted variant) on the network.
func Run(net *congest.Network, spec Spec) (*Result, error) {
	g := net.Graph()
	n := g.N()
	k := len(spec.Sources)
	if k == 0 {
		return nil, fmt.Errorf("ksssp: no sources")
	}
	if spec.Eps > 0 && !g.Weighted() {
		return nil, fmt.Errorf("ksssp: eps set for unweighted graph")
	}
	if spec.Substrate != nil && !proto.UnitWeights(g) && !spec.Substrate.Supports(true) {
		return nil, fmt.Errorf("ksssp: substrate %q does not support weighted graphs", spec.Substrate.Name())
	}
	if spec.Substrate == nil && spec.Eps == 0 && !proto.UnitWeights(g) {
		return nil, fmt.Errorf("ksssp: weighted graph needs eps > 0 or a weighted-capable substrate")
	}
	h := spec.H
	if h <= 0 {
		h = int(math.Ceil(math.Sqrt(float64(n) * float64(k))))
	}
	factor := spec.SampleFactor
	if factor <= 0 {
		factor = 3
	}
	dir := spec.Dir
	if dir == 0 {
		dir = proto.Forward
	}
	startRounds := net.Stats().Rounds

	// Step 1: shared-randomness sample.
	sampled := proto.Sample(n, proto.SampleProb(n, h, factor), net.Options().Seed, 1000+spec.Salt)
	if len(sampled) == 0 {
		sampled = []int{0}
	}

	// Step 2: h-hop multi-source distances from S.
	net.BeginPhase("ksssp:sample-bfs")
	sampleRes, err := runHopDist(net, spec, sampled, h, dir)
	net.EndPhase()
	if err != nil {
		return nil, fmt.Errorf("ksssp: sample BFS: %w", err)
	}

	// Step 3: broadcast skeleton edges. The h-hop distance d(s,t) is held
	// at t (for Forward; at t as well for Backward with the reversed
	// meaning), so each sampled vertex t contributes records
	// (sIdx, tIdx, d).
	net.BeginPhase("ksssp:skeleton-broadcast")
	tree, err := proto.BuildTree(net, 0)
	if err != nil {
		net.EndPhase()
		return nil, fmt.Errorf("ksssp: %w", err)
	}
	sampleIdx := make(map[int]int, len(sampled))
	for j, s := range sampled {
		sampleIdx[s] = j
	}
	values := make([][][]int64, n)
	for j, t := range sampled {
		for i := range sampled {
			if d := sampleRes.Dist[t][i]; d < seq.Inf {
				values[t] = append(values[t], []int64{int64(i), int64(j), d})
			}
		}
	}
	skelEdges, err := proto.Broadcast(net, tree, values)
	net.EndPhase()
	if err != nil {
		return nil, fmt.Errorf("ksssp: skeleton broadcast: %w", err)
	}

	// Step 4: local skeleton APSP (identical at every node; we compute it
	// once — zero rounds either way).
	skel := skeletonAPSP(len(sampled), skelEdges[0])

	// Step 5: h-hop distances from the k sources.
	net.BeginPhase("ksssp:source-bfs")
	srcRes, err := runHopDist(net, spec, spec.Sources, h, dir)
	net.EndPhase()
	if err != nil {
		return nil, fmt.Errorf("ksssp: source BFS: %w", err)
	}
	// Sampled vertices broadcast d(u, s) for sources u that reached them.
	values = make([][][]int64, n)
	for j, s := range sampled {
		for i := range spec.Sources {
			if d := srcRes.Dist[s][i]; d < seq.Inf {
				values[s] = append(values[s], []int64{int64(i), int64(j), d})
			}
		}
	}
	net.BeginPhase("ksssp:source-broadcast")
	srcToSample, err := proto.Broadcast(net, tree, values)
	net.EndPhase()
	if err != nil {
		return nil, fmt.Errorf("ksssp: source-sample broadcast: %w", err)
	}

	// Step 6: local combination at every node. All nodes know
	// dUS[u][t] (broadcast), skel[t][s] (local APSP on broadcast edges) and
	// their own d(s, v) (step 2). We first compute d*(u,s) =
	// min_t dUS[u][t] + skel[t][s], shared by all nodes.
	dUS := make([][]int64, k)
	for i := range dUS {
		dUS[i] = make([]int64, len(sampled))
		for j := range dUS[i] {
			dUS[i][j] = seq.Inf
		}
	}
	for _, rec := range srcToSample[0] {
		u, j, d := int(rec[0]), int(rec[1]), rec[2]
		if d < dUS[u][j] {
			dUS[u][j] = d
		}
	}
	dStar := make([][]int64, k)
	for u := 0; u < k; u++ {
		dStar[u] = make([]int64, len(sampled))
		for s := range sampled {
			best := seq.Inf
			for t := range sampled {
				if dUS[u][t] >= seq.Inf || skel[t][s] >= seq.Inf {
					continue
				}
				if c := dUS[u][t] + skel[t][s]; c < best {
					best = c
				}
			}
			dStar[u][s] = best
		}
	}
	dist := make([][]int64, n)
	pred := make([][]int32, n)
	for v := 0; v < n; v++ {
		row := make([]int64, k)
		prow := make([]int32, k)
		for u := 0; u < k; u++ {
			best := srcRes.Dist[v][u]
			bestPred := srcRes.Pred[v][u]
			for s := range sampled {
				if dStar[u][s] >= seq.Inf || sampleRes.Dist[v][s] >= seq.Inf {
					continue
				}
				if c := dStar[u][s] + sampleRes.Dist[v][s]; c < best {
					best = c
					bestPred = sampleRes.Pred[v][s]
					if bestPred == -1 && sampled[s] == v {
						// The realized path ends inside the skeleton.
						bestPred = PredUnknown
					}
				}
			}
			row[u] = best
			prow[u] = bestPred
		}
		dist[v] = row
		pred[v] = prow
	}
	return &Result{
		Dist:       dist,
		Pred:       pred,
		Sampled:    sampled,
		SampleDist: sampleRes.Dist,
		SkelDist:   skel,
		Rounds:     net.Stats().Rounds - startRounds,
	}, nil
}

// runHopDist runs the h-hop multi-source distance computation appropriate
// for the graph class: the spec's substrate when one is plugged in, else
// exact pipelined BFS for unweighted graphs or scaled (1+eps)-approximate
// SSSP for weighted ones.
func runHopDist(net *congest.Network, spec Spec, sources []int, h int, dir proto.Direction) (*proto.MultiBFSResult, error) {
	if spec.Substrate != nil {
		return spec.Substrate.Run(net, proto.HopDistSpec{
			Sources: sources,
			H:       h,
			Eps:     spec.Eps,
			Dir:     dir,
		})
	}
	if spec.Eps == 0 {
		return proto.RunMultiBFS(net, proto.MultiBFSSpec{
			Sources: sources,
			Dir:     dir,
			Bound:   int64(h),
		})
	}
	return proto.RunApproxHopSSSP(net, proto.ApproxHopSSSPSpec{
		Sources: sources,
		H:       h,
		Eps:     spec.Eps,
		Dir:     dir,
	})
}

// skeletonAPSP runs Floyd-Warshall on the broadcast skeleton edges
// (records (sIdx, tIdx, d) meaning d(S[sIdx] -> S[tIdx]) = d).
func skeletonAPSP(m int, records [][]int64) [][]int64 {
	dist := make([][]int64, m)
	for i := range dist {
		dist[i] = make([]int64, m)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = seq.Inf
			}
		}
	}
	for _, rec := range records {
		s, t, d := int(rec[0]), int(rec[1]), rec[2]
		if d < dist[s][t] {
			dist[s][t] = d
		}
	}
	for mid := 0; mid < m; mid++ {
		for i := 0; i < m; i++ {
			if dist[i][mid] >= seq.Inf {
				continue
			}
			for j := 0; j < m; j++ {
				if dist[mid][j] >= seq.Inf {
					continue
				}
				if c := dist[i][mid] + dist[mid][j]; c < dist[i][j] {
					dist[i][j] = c
				}
			}
		}
	}
	return dist
}

// Auto picks the Theorem 1.6.A regime: for k >= n^{1/3} sources it runs
// Algorithm 1 (O~(sqrt(nk) + D)); for fewer sources it compares the
// O~(n/k + D) skeleton bound against the k * SSSP cost of one pipelined
// SSSP per source and picks the smaller estimate, mirroring the min(...)
// of equation (1).
func Auto(net *congest.Network, spec Spec) (*Result, error) {
	n := net.Graph().N()
	k := len(spec.Sources)
	if k == 0 {
		return nil, fmt.Errorf("ksssp: no sources")
	}
	if float64(k) >= math.Cbrt(float64(n)) {
		return Run(net, spec)
	}
	// Estimated costs, up to shared polylog factors: the generalised
	// Algorithm 1 with h = sqrt(nk) costs ~ n/k + D (the |S|^2 broadcast
	// dominates); repeating SSSP costs ~ k * (sqrt(n) + D). D is bounded
	// by the tree height, cheap to obtain.
	tree, err := proto.BuildTree(net, 0)
	if err != nil {
		return nil, fmt.Errorf("ksssp: %w", err)
	}
	d := float64(tree.Height)
	skeleton := float64(n)/float64(k) + d
	repeated := float64(k) * (math.Sqrt(float64(n)) + d)
	if skeleton <= repeated {
		return Run(net, spec)
	}
	return RunSequential(net, spec)
}

// RunSequential computes k-source distances by running one full (non-hop-
// bounded) SSSP per source in sequence — the k*SSSP alternative of Theorem
// 1.6.A for small k, and a baseline for the benchmarks.
func RunSequential(net *congest.Network, spec Spec) (*Result, error) {
	g := net.Graph()
	n := g.N()
	if len(spec.Sources) == 0 {
		return nil, fmt.Errorf("ksssp: no sources")
	}
	dir := spec.Dir
	if dir == 0 {
		dir = proto.Forward
	}
	startRounds := net.Stats().Rounds
	dist := make([][]int64, n)
	pred := make([][]int32, n)
	for v := range dist {
		dist[v] = make([]int64, len(spec.Sources))
		pred[v] = make([]int32, len(spec.Sources))
	}
	net.BeginPhase("ksssp:sequential")
	defer net.EndPhase()
	for i, s := range spec.Sources {
		var res *proto.MultiBFSResult
		var err error
		if spec.Substrate != nil {
			res, err = spec.Substrate.Run(net, proto.HopDistSpec{
				Sources: []int{s}, Eps: spec.Eps, Dir: dir,
			})
		} else if spec.Eps == 0 {
			res, err = proto.RunMultiBFS(net, proto.MultiBFSSpec{Sources: []int{s}, Dir: dir})
		} else {
			res, err = proto.RunApproxHopSSSP(net, proto.ApproxHopSSSPSpec{
				Sources: []int{s}, H: n, Eps: spec.Eps, Dir: dir,
			})
		}
		if err != nil {
			return nil, fmt.Errorf("ksssp: source %d: %w", s, err)
		}
		for v := 0; v < n; v++ {
			dist[v][i] = res.Dist[v][0]
			pred[v][i] = res.Pred[v][0]
		}
	}
	return &Result{Dist: dist, Pred: pred, Rounds: net.Stats().Rounds - startRounds}, nil
}
