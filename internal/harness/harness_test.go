package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistriesComplete(t *testing.T) {
	ub := UpperBounds()
	if len(ub) != 10 {
		t.Errorf("upper-bound registry has %d experiments, want 10", len(ub))
	}
	lbs := LowerBounds()
	if len(lbs) != 4 {
		t.Errorf("lower-bound registry has %d experiments, want 4", len(lbs))
	}
	if got := len(IDs()); got != len(ub)+len(lbs) {
		t.Errorf("IDs() returned %d, want %d", got, len(ub)+len(lbs))
	}
	for id, e := range ub {
		if e.ID != id || e.Run == nil || e.Claim == "" {
			t.Errorf("experiment %s misconfigured", id)
		}
	}
}

func TestFitExponent(t *testing.T) {
	// rounds = 3 * n^0.8 exactly.
	sizes := []int{64, 128, 256, 512}
	rounds := make([]float64, len(sizes))
	for i, n := range sizes {
		rounds[i] = 3 * math.Pow(float64(n), 0.8)
	}
	if got := FitExponent(sizes, rounds); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("FitExponent = %v, want 0.8", got)
	}
	if !math.IsNaN(FitExponent([]int{10}, []float64{5})) {
		t.Error("single point should give NaN")
	}
}

func TestUpperBoundRunsProduceSaneResults(t *testing.T) {
	for id, ub := range UpperBounds() {
		res, err := ub.Run(48, 3)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Rounds <= 0 {
			t.Errorf("%s: rounds = %d", id, res.Rounds)
		}
		if !math.IsNaN(res.Ratio) {
			if res.Ratio < 1-1e-9 {
				t.Errorf("%s: ratio %v < 1 (unsound)", id, res.Ratio)
			}
			// Generous slack over the claimed factor on small instances.
			if res.Ratio > ub.MaxRatio+1.0 {
				t.Errorf("%s: ratio %v far above claim %v", id, res.Ratio, ub.MaxRatio)
			}
		}
	}
}

func TestSweepAndTable(t *testing.T) {
	ub := UpperBounds()[ExpGirthApprox]
	res, err := Sweep(ub, []int{32, 64}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanRounds) != 2 || res.MeanRounds[0] <= 0 {
		t.Fatalf("sweep results malformed: %+v", res)
	}
	var buf bytes.Buffer
	WriteSweepTable(&buf, res)
	out := buf.String()
	for _, want := range []string{"T1-GIRTH-2APX", "fitted exponent", "worst approximation ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLowerBound(t *testing.T) {
	for id, lbe := range LowerBounds() {
		scale := 5
		res, err := RunLowerBound(lbe, scale, 7)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !res.GapOK {
			t.Errorf("%s: weight gap violated", id)
		}
		if !res.DecisionOK {
			t.Errorf("%s: disjointness decision wrong", id)
		}
		if res.CutWords <= 0 || res.ImpliedRounds <= 0 {
			t.Errorf("%s: cut metering empty: %+v", id, res)
		}
		if res.CertifiedFactor < 1.9 {
			t.Errorf("%s: certified factor %.2f too small", id, res.CertifiedFactor)
		}
		var buf bytes.Buffer
		WriteLBTable(&buf, []*LBResult{res})
		if !strings.Contains(buf.String(), string(id)) {
			t.Errorf("%s: table output missing ID", id)
		}
	}
}

func TestLowerBoundCutGrowsWithScale(t *testing.T) {
	lbe := LowerBounds()[ExpDirectedLB2]
	small, err := RunLowerBound(lbe, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunLowerBound(lbe, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if large.CutWords <= small.CutWords {
		t.Errorf("cut words did not grow: %d -> %d", small.CutWords, large.CutWords)
	}
}

func TestUpperBoundsWithFactorChangesSampling(t *testing.T) {
	// A smaller sampling constant must reduce the girth algorithm's rounds
	// on a fixed instance (fewer sampled BFS sources).
	small, err := UpperBoundsWithFactor(1)[ExpGirthApprox].Run(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := UpperBoundsWithFactor(9)[ExpGirthApprox].Run(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	if small.Rounds >= big.Rounds {
		t.Errorf("factor 1 rounds %d should be below factor 9 rounds %d", small.Rounds, big.Rounds)
	}
}
