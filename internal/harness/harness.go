// Package harness regenerates the paper's evaluation artefacts: one
// experiment per row of Table 1 (the paper's only table; it has no
// figures), as indexed in DESIGN.md.
//
// For upper-bound rows an experiment sweeps the instance size n, runs the
// row's algorithm on generated workloads, records the CONGEST rounds and
// the approximation ratio against the sequential ground truth, and fits the
// round-complexity exponent (slope of log rounds vs log n) next to the
// claimed exponent. For lower-bound rows it builds the reduction instances,
// verifies the weight gap, and measures the words crossing the Alice/Bob
// cut while the exact algorithm decides set disjointness, reporting the
// implied round lower bound.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"congestmwc/internal/congest"
	"congestmwc/internal/dirmwc"
	"congestmwc/internal/exact"
	"congestmwc/internal/gen"
	"congestmwc/internal/girth"
	"congestmwc/internal/ksssp"
	"congestmwc/internal/lb"
	"congestmwc/internal/obs"
	"congestmwc/internal/seq"
	"congestmwc/internal/wmwc"
)

// Experiment identifies one Table 1 row reproduction (see DESIGN.md's
// experiment index).
type Experiment string

// Upper-bound experiments.
const (
	ExpDirectedExact    Experiment = "T1-DIR-EX"
	ExpDirected2Approx  Experiment = "T1-DIR-2APX"
	ExpDirectedW2Approx Experiment = "T1-DIR-W2APX"
	ExpUndirWExact      Experiment = "T1-UW-EX"
	ExpUndirW2Approx    Experiment = "T1-UW-2APX"
	ExpGirthExact       Experiment = "T1-GIRTH-EX"
	ExpGirthApprox      Experiment = "T1-GIRTH-2APX"
	ExpGirthPRT         Experiment = "T1-GIRTH-PRT"
	ExpKSourceBFS       Experiment = "T6-KBFS"
	ExpKSourceSSSP      Experiment = "T6-KSSSP"
)

// Lower-bound experiments.
const (
	ExpDirectedLB2 Experiment = "T1-DIR-LB2"
	ExpDirectedLBA Experiment = "T1-DIR-LBA"
	ExpUndirWLB2   Experiment = "T1-UW-LB2"
	ExpGirthLBA    Experiment = "T1-GIRTH-LBA"
)

// UpperBound describes an upper-bound experiment's claim and workload.
type UpperBound struct {
	ID Experiment
	// Claim is the paper's round bound, e.g. "O~(n^{4/5} + D)".
	Claim string
	// Exponent is the claimed polynomial exponent of n.
	Exponent float64
	// MaxRatio is the claimed approximation factor (1 for exact rows).
	MaxRatio float64
	// Run builds a workload of size n and runs the row's algorithm,
	// returning measured rounds and the approximation ratio (1 for exact).
	Run func(n int, seed int64) (RunResult, error)
}

// RunResult is one measured execution. Beyond the round count it carries
// the communication-cost figures recorded by the obs.Collector every
// harness run now threads through the network: total messages and words,
// and the peak single-round single-link word count (realized congestion).
type RunResult struct {
	N             int
	Rounds        int
	Messages      int
	Words         int
	PeakLinkWords int
	Ratio         float64
}

// UpperBounds returns the registry of upper-bound experiments keyed by ID,
// with the default Theta(log n) sampling constant.
func UpperBounds() map[Experiment]UpperBound {
	return UpperBoundsWithFactor(0)
}

// UpperBoundsWithFactor is UpperBounds with an explicit sampling constant
// (<= 0 selects each algorithm's default of 3). Smaller factors leave the
// saturated-sampling regime earlier on small instances, at the cost of a
// larger failure probability; see EXPERIMENTS.md.
func UpperBoundsWithFactor(factor float64) map[Experiment]UpperBound {
	const eps = 0.25
	return map[Experiment]UpperBound{
		ExpDirectedExact: {
			ID: ExpDirectedExact, Claim: "O~(n)", Exponent: 1.0, MaxRatio: 1,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed, gen.Random{N: n, P: pick(n), Directed: true, Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := exact.MWC(net)
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpDirected2Approx: {
			ID: ExpDirected2Approx, Claim: "O~(n^{4/5} + D)", Exponent: 0.8, MaxRatio: 2,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed, gen.Random{N: n, P: pick(n), Directed: true, Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := dirmwc.Run(net, dirmwc.Spec{SampleFactor: factor})
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpDirectedW2Approx: {
			ID: ExpDirectedW2Approx, Claim: "O~(n^{4/5} + D)", Exponent: 0.8, MaxRatio: 2 + eps,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed,
					gen.Random{N: n, P: pick(n), Directed: true, Weighted: true, MaxW: 32, Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := wmwc.Run(net, wmwc.Spec{Eps: eps, SampleFactor: factor})
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpUndirWExact: {
			ID: ExpUndirWExact, Claim: "O~(n)", Exponent: 1.0, MaxRatio: 1,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed,
					gen.Random{N: n, P: pick(n), Weighted: true, MaxW: 32, Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := exact.MWC(net)
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpUndirW2Approx: {
			ID: ExpUndirW2Approx, Claim: "O~(n^{2/3} + D)", Exponent: 2.0 / 3, MaxRatio: 2 + eps,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed,
					gen.Random{N: n, P: pick(n), Weighted: true, MaxW: 32, Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := wmwc.Run(net, wmwc.Spec{Eps: eps, SampleFactor: factor})
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpGirthExact: {
			ID: ExpGirthExact, Claim: "O(n)", Exponent: 1.0, MaxRatio: 1,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed, gen.Random{N: n, P: pick(n), Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := exact.MWC(net)
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpGirthApprox: {
			ID: ExpGirthApprox, Claim: "O~(sqrt(n) + D)", Exponent: 0.5, MaxRatio: 2,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed, gen.Random{N: n, P: pick(n), Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := girth.Run(net, girth.Spec{SampleFactor: factor})
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpGirthPRT: {
			ID: ExpGirthPRT, Claim: "[44]-style baseline (simplified; see girth.RunPRT doc)",
			Exponent: 1.0, MaxRatio: 2,
			Run: func(n int, seed int64) (RunResult, error) {
				return runMWC(n, seed, gen.Random{N: n, P: pick(n), Seed: seed},
					func(net *congest.Network) (int64, bool, error) {
						r, err := girth.RunPRT(net, girth.Spec{SampleFactor: factor})
						if err != nil {
							return 0, false, err
						}
						return r.Weight, r.Found, nil
					})
			},
		},
		ExpKSourceBFS: {
			ID: ExpKSourceBFS, Claim: "O~(sqrt(nk) + D), k=n^{1/2}: O~(n^{3/4})",
			Exponent: 0.75, MaxRatio: 1,
			Run: runKSourceBFS,
		},
		ExpKSourceSSSP: {
			ID: ExpKSourceSSSP, Claim: "O~(sqrt(nk) + D), k=n^{1/2}: O~(n^{3/4})",
			Exponent: 0.75, MaxRatio: 1 + eps,
			Run: runKSourceSSSP,
		},
	}
}

// pick returns an edge probability keeping random instances sparse
// (expected degree ~4 beyond the backbone).
func pick(n int) float64 {
	p := 4.0 / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// meter attaches a lean collector (totals and congestion peaks only — no
// series, tag or link maps) so every harness run reports communication
// cost at negligible overhead.
func meter(net *congest.Network) *obs.Collector {
	col := &obs.Collector{NoSeries: true, NoPerTag: true, NoPerLink: true}
	net.SetObserver(col)
	return col
}

func fill(res *RunResult, net *congest.Network, col *obs.Collector) {
	s := net.Stats()
	res.Rounds = s.Rounds
	res.Messages = s.Messages
	res.Words = s.Words
	res.PeakLinkWords = col.PeakLinkWords
}

func runMWC(n int, seed int64, r gen.Random, algo func(*congest.Network) (int64, bool, error)) (RunResult, error) {
	g, err := r.Graph()
	if err != nil {
		return RunResult{}, err
	}
	net, err := congest.NewNetwork(g, congest.Options{Seed: seed + 1})
	if err != nil {
		return RunResult{}, err
	}
	col := meter(net)
	w, found, err := algo(net)
	if err != nil {
		return RunResult{}, err
	}
	truth, ok := seq.MWC(g)
	ratio := math.NaN()
	switch {
	case ok && found:
		ratio = float64(w) / float64(truth)
	case !ok && !found:
		ratio = 1
	}
	out := RunResult{N: n, Ratio: ratio}
	fill(&out, net, col)
	return out, nil
}

func runKSourceBFS(n int, seed int64) (RunResult, error) {
	g, err := (gen.Random{N: n, P: pick(n), Directed: true, Seed: seed}).Graph()
	if err != nil {
		return RunResult{}, err
	}
	k := int(math.Ceil(math.Sqrt(float64(n))))
	sources := spread(n, k)
	net, err := congest.NewNetwork(g, congest.Options{Seed: seed + 1})
	if err != nil {
		return RunResult{}, err
	}
	col := meter(net)
	res, err := ksssp.Run(net, ksssp.Spec{Sources: sources})
	if err != nil {
		return RunResult{}, err
	}
	ratio := 1.0
	for i, s := range sources {
		want := seq.BFS(g, s)
		for v := 0; v < n; v++ {
			if res.Dist[v][i] != want[v] {
				ratio = math.Inf(1) // exactness violated
			}
		}
	}
	out := RunResult{N: n, Ratio: ratio}
	fill(&out, net, col)
	return out, nil
}

func runKSourceSSSP(n int, seed int64) (RunResult, error) {
	const eps = 0.25
	g, err := (gen.Random{N: n, P: pick(n), Directed: true, Weighted: true, MaxW: 32, Seed: seed}).Graph()
	if err != nil {
		return RunResult{}, err
	}
	k := int(math.Ceil(math.Sqrt(float64(n))))
	sources := spread(n, k)
	net, err := congest.NewNetwork(g, congest.Options{Seed: seed + 1})
	if err != nil {
		return RunResult{}, err
	}
	col := meter(net)
	res, err := ksssp.Run(net, ksssp.Spec{Sources: sources, Eps: eps})
	if err != nil {
		return RunResult{}, err
	}
	worst := 1.0
	for i, s := range sources {
		want := seq.Dijkstra(g, s)
		for v := 0; v < n; v++ {
			if want[v] >= seq.Inf || want[v] == 0 {
				continue
			}
			r := float64(res.Dist[v][i]) / float64(want[v])
			if r > worst {
				worst = r
			}
		}
	}
	out := RunResult{N: n, Ratio: worst}
	fill(&out, net, col)
	return out, nil
}

func spread(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i * n / k
	}
	return out
}

// SweepResult aggregates an upper-bound experiment over a size sweep.
type SweepResult struct {
	ID             Experiment
	Claim          string
	ClaimExponent  float64
	Sizes          []int
	MeanRounds     []float64
	MeanWords      []float64
	PeakLinkWords  []int // worst realized per-round link congestion per size
	WorstRatio     float64
	FittedExponent float64
}

// Sweep runs the experiment at each size with `reps` seeds and fits the
// log-log slope of mean rounds against n.
func Sweep(ub UpperBound, sizes []int, reps int, baseSeed int64) (*SweepResult, error) {
	out := &SweepResult{
		ID: ub.ID, Claim: ub.Claim, ClaimExponent: ub.Exponent,
		Sizes: append([]int(nil), sizes...),
	}
	for _, n := range sizes {
		total, totalWords, peak := 0.0, 0.0, 0
		for rep := 0; rep < reps; rep++ {
			res, err := ub.Run(n, baseSeed+int64(rep)*101+int64(n))
			if err != nil {
				return nil, fmt.Errorf("harness %s n=%d rep=%d: %w", ub.ID, n, rep, err)
			}
			total += float64(res.Rounds)
			totalWords += float64(res.Words)
			if res.PeakLinkWords > peak {
				peak = res.PeakLinkWords
			}
			if !math.IsNaN(res.Ratio) && res.Ratio > out.WorstRatio {
				out.WorstRatio = res.Ratio
			}
		}
		out.MeanRounds = append(out.MeanRounds, total/float64(reps))
		out.MeanWords = append(out.MeanWords, totalWords/float64(reps))
		out.PeakLinkWords = append(out.PeakLinkWords, peak)
	}
	out.FittedExponent = FitExponent(out.Sizes, out.MeanRounds)
	return out, nil
}

// FitExponent least-squares fits slope of log(rounds) against log(n).
func FitExponent(sizes []int, rounds []float64) float64 {
	if len(sizes) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range sizes {
		x := math.Log(float64(sizes[i]))
		y := math.Log(rounds[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	k := float64(len(sizes))
	return (k*sxy - sx*sy) / (k*sxx - sx*sx)
}

// LowerBound describes a lower-bound experiment.
type LowerBound struct {
	ID    Experiment
	Claim string
	// Build constructs the instance for a given scale and forced
	// intersection state.
	Build func(scale int, intersect bool, seed int64) (*lb.Instance, error)
}

// LowerBounds returns the registry of lower-bound experiments keyed by ID.
func LowerBounds() map[Experiment]LowerBound {
	return map[Experiment]LowerBound{
		ExpDirectedLB2: {
			ID: ExpDirectedLB2, Claim: "(2-eps)-approx needs Omega(n/log n), D=O(1)",
			Build: func(scale int, intersect bool, seed int64) (*lb.Instance, error) {
				return lb.Directed2Eps(scale, lb.RandomDisjointness(scale*scale, intersect, seed))
			},
		},
		ExpUndirWLB2: {
			ID: ExpUndirWLB2, Claim: "(2-eps)-approx needs Omega(n/log n)",
			Build: func(scale int, intersect bool, seed int64) (*lb.Instance, error) {
				return lb.UndirWeighted2Eps(scale, lb.RandomDisjointness(scale*scale, intersect, seed), 50)
			},
		},
		ExpDirectedLBA: {
			ID: ExpDirectedLBA, Claim: "alpha-approx needs Omega(sqrt(n)/log n)",
			Build: func(scale int, intersect bool, seed int64) (*lb.Instance, error) {
				return lb.Alpha(scale, scale, lb.RandomDisjointness(scale, intersect, seed), true, 16)
			},
		},
		ExpGirthLBA: {
			ID: ExpGirthLBA, Claim: "alpha-approx of girth needs Omega(n^{1/4}/log n)",
			Build: func(scale int, intersect bool, seed int64) (*lb.Instance, error) {
				return lb.GirthAlpha(scale, scale, lb.RandomDisjointness(scale, intersect, seed), 4)
			},
		},
	}
}

// LBResult aggregates a lower-bound experiment at one scale.
type LBResult struct {
	ID                Experiment
	Scale, N, Bits    int
	GapOK, DecisionOK bool
	CutWords          int
	ImpliedRounds     int
	MeasuredRounds    int
	CertifiedFactor   float64
	// CutPerRound / PeakCutWords are the disjoint instance's round-by-round
	// cut traffic (the Section-5 measurement) and its per-round maximum.
	CutPerRound  []int
	PeakCutWords int
}

// RunLowerBound verifies the gap and meters the cut at one scale (both an
// intersecting and a disjoint instance; cut figures are from the disjoint
// one, the harder side of the communication argument).
func RunLowerBound(lbe LowerBound, scale int, seed int64) (*LBResult, error) {
	out := &LBResult{ID: lbe.ID, Scale: scale, GapOK: true, DecisionOK: true}
	for _, intersect := range []bool{true, false} {
		inst, err := lbe.Build(scale, intersect, seed)
		if err != nil {
			return nil, err
		}
		out.N = inst.Graph.N()
		out.Bits = inst.Bits
		out.CertifiedFactor = float64(inst.Heavy) / float64(inst.Light)
		w, ok := seq.MWC(inst.Graph)
		if intersect && (!ok || w > inst.Light) {
			out.GapOK = false
		}
		if !intersect && ok && w < inst.Heavy {
			out.GapOK = false
		}
		meas, err := lb.Measure(inst, congest.Options{Seed: seed}, lb.ExactMWC)
		if err != nil {
			return nil, err
		}
		if meas.Intersects != intersect {
			out.DecisionOK = false
		}
		if !intersect {
			out.CutWords = meas.CutWords
			out.ImpliedRounds = meas.ImpliedRounds
			out.MeasuredRounds = meas.Rounds
			out.CutPerRound = meas.CutPerRound
			out.PeakCutWords = meas.PeakCutWords
		}
	}
	return out, nil
}

// WriteSweepTable prints a SweepResult as an aligned text table.
func WriteSweepTable(w io.Writer, res *SweepResult) {
	fmt.Fprintf(w, "%s  claim %s (exponent %.2f)\n", res.ID, res.Claim, res.ClaimExponent)
	fmt.Fprintf(w, "  %-8s %-12s %-12s %s\n", "n", "mean rounds", "mean words", "peak link-words/round")
	for i, n := range res.Sizes {
		fmt.Fprintf(w, "  %-8d %-12.0f %-12.0f %d\n",
			n, res.MeanRounds[i], res.MeanWords[i], res.PeakLinkWords[i])
	}
	fmt.Fprintf(w, "  fitted exponent: %.3f (claimed %.2f)\n", res.FittedExponent, res.ClaimExponent)
	if res.WorstRatio > 0 {
		fmt.Fprintf(w, "  worst approximation ratio: %.3f\n", res.WorstRatio)
	}
}

// WriteLBTable prints lower-bound results as an aligned text table.
func WriteLBTable(w io.Writer, rows []*LBResult) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s  claim %s\n", rows[0].ID, LowerBounds()[rows[0].ID].Claim)
	fmt.Fprintf(w, "  %-7s %-7s %-7s %-6s %-9s %-10s %-9s %-8s %s\n",
		"scale", "n", "bits", "gap", "decision", "cut-words", "implied", "rounds", "peak-cut/rd")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7d %-7d %-7d %-6v %-9v %-10d %-9d %-8d %d\n",
			r.Scale, r.N, r.Bits, r.GapOK, r.DecisionOK, r.CutWords, r.ImpliedRounds,
			r.MeasuredRounds, r.PeakCutWords)
	}
}

// WriteCutSeries prints one lower-bound row's round-by-round cut traffic
// as "round cut-words" pairs (rounds with zero cut traffic elided).
func WriteCutSeries(w io.Writer, r *LBResult) {
	fmt.Fprintf(w, "%s scale=%d cut-words per round (nonzero):\n", r.ID, r.Scale)
	for i, c := range r.CutPerRound {
		if c > 0 {
			fmt.Fprintf(w, "  r=%-6d %d\n", i+1, c)
		}
	}
}

// IDs returns all experiment IDs in canonical order.
func IDs() []Experiment {
	var ids []Experiment
	for id := range UpperBounds() {
		ids = append(ids, id)
	}
	for id := range LowerBounds() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return strings.Compare(string(ids[i]), string(ids[j])) < 0 })
	return ids
}
