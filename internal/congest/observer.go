package congest

import "strings"

// Observer receives simulation events. Implementations must be fast; the
// observer runs synchronously inside the round loop (message events are
// emitted from the single-threaded transmit phase, so no locking is needed
// even under the parallel engine, and both engines produce the identical
// event stream).
//
// Observers may additionally implement any of the optional extension
// interfaces RoundObserver, PhaseObserver and RunObserver; the network
// detects them once in SetObserver and invokes them with no per-event
// type assertions.
type Observer interface {
	// OnRound fires at the start of every executed round, before
	// deliveries. Empty rounds skipped by the event-driven scheduler fire
	// no callback; their count reaches RoundObservers as RoundStats.Gap.
	OnRound(round int)
	// OnMessage fires for every delivered message.
	OnMessage(round, from, to int, m Msg)
}

// RoundStats are the totals of one synchronous round, handed to a
// RoundObserver after the round's handlers finish. They are per-round
// deltas, so collectors do not have to diff cumulative Stats themselves.
type RoundStats struct {
	// Messages and Words delivered this round.
	Messages int
	Words    int
	// CutWords delivered across the metered cut this round (0 without a cut).
	CutWords int
	// Active is the number of nodes activated this round.
	Active int
	// MaxLinkWords is the most words delivered over any single directed
	// link this round — the realized per-link congestion.
	MaxLinkWords int
	// MaxQueueLen is the longest link queue left after the round's
	// transmissions — the backlog pipelined protocols are working through.
	MaxQueueLen int
	// Gap is the number of empty rounds the event-driven scheduler skipped
	// immediately before this round — rounds in which no link could
	// complete a delivery and no wake-up fired, so no handler ran and no
	// statistic other than Stats.Rounds changed. This round therefore
	// accounts for Gap+1 of Stats.Rounds. Always 0 under Options.Stepwise.
	Gap int
}

// RoundObserver is an optional Observer extension: OnRoundEnd fires once
// per round after all deliveries and handler invocations, carrying the
// round's totals.
type RoundObserver interface {
	OnRoundEnd(round int, rs RoundStats)
}

// PhaseObserver is an optional Observer extension receiving the phase
// spans opened and closed via Network.BeginPhase / Network.EndPhase.
// path is the "/"-joined stack of open phase names (innermost last).
type PhaseObserver interface {
	OnPhaseBegin(path string, round int)
	OnPhaseEnd(path string, round int)
}

// RunObserver is an optional Observer extension bracketing each
// Network.Run call. OnRunEnd fires on quiescence and on budget
// exhaustion, so buffering observers can flush.
type RunObserver interface {
	OnRunStart(round int)
	OnRunEnd(round int)
}

// MessageFilter is an optional Observer extension: an observer whose
// WantsMessages returns false is never invoked per delivered message,
// sparing the engine one OnMessage call per message on its hottest path.
// Round, phase and run events are unaffected. Checked once in
// SetObserver, so the answer must not change while installed.
type MessageFilter interface {
	WantsMessages() bool
}

// SetObserver installs an observer (nil removes it). Optional extension
// interfaces are detected here, once.
func (net *Network) SetObserver(obs Observer) {
	net.obs = obs
	net.msgObs = obs
	if mf, ok := obs.(MessageFilter); ok && !mf.WantsMessages() {
		net.msgObs = nil
	}
	net.roundObs, _ = obs.(RoundObserver)
	net.phaseObs, _ = obs.(PhaseObserver)
	net.runObs, _ = obs.(RunObserver)
}

// BeginPhase opens a named phase span: until the matching EndPhase, a
// PhaseObserver attributes rounds and traffic to this span. Phases nest;
// the span's path is the "/"-joined stack of open names. Composite
// algorithms call BeginPhase/EndPhase around their sub-algorithm Run
// calls, so span boundaries always fall between rounds.
func (net *Network) BeginPhase(name string) {
	net.phases = append(net.phases, name)
	if net.phaseObs != nil {
		net.phaseObs.OnPhaseBegin(net.PhasePath(), net.now)
	}
}

// EndPhase closes the innermost open phase span. It panics if no phase is
// open — mismatched Begin/End pairs are a programming error.
func (net *Network) EndPhase() {
	if len(net.phases) == 0 {
		panic("congest: EndPhase without matching BeginPhase")
	}
	if net.phaseObs != nil {
		net.phaseObs.OnPhaseEnd(net.PhasePath(), net.now)
	}
	net.phases = net.phases[:len(net.phases)-1]
}

// PhasePath returns the "/"-joined stack of open phase names ("" when no
// phase is open).
func (net *Network) PhasePath() string { return strings.Join(net.phases, "/") }

// Multi fans simulation events out to several observers. Each optional
// extension event is forwarded to exactly the observers implementing it.
type Multi []Observer

var (
	_ Observer      = Multi(nil)
	_ RoundObserver = Multi(nil)
	_ PhaseObserver = Multi(nil)
	_ RunObserver   = Multi(nil)
	_ MessageFilter = Multi(nil)
)

// OnRound implements Observer.
func (m Multi) OnRound(round int) {
	for _, o := range m {
		o.OnRound(round)
	}
}

// OnMessage implements Observer.
func (m Multi) OnMessage(round, from, to int, msg Msg) {
	for _, o := range m {
		if mf, ok := o.(MessageFilter); ok && !mf.WantsMessages() {
			continue
		}
		o.OnMessage(round, from, to, msg)
	}
}

// WantsMessages implements MessageFilter: message events are needed
// unless every member observer declines them.
func (m Multi) WantsMessages() bool {
	for _, o := range m {
		mf, ok := o.(MessageFilter)
		if !ok || mf.WantsMessages() {
			return true
		}
	}
	return false
}

// OnRoundEnd implements RoundObserver.
func (m Multi) OnRoundEnd(round int, rs RoundStats) {
	for _, o := range m {
		if ro, ok := o.(RoundObserver); ok {
			ro.OnRoundEnd(round, rs)
		}
	}
}

// OnPhaseBegin implements PhaseObserver.
func (m Multi) OnPhaseBegin(path string, round int) {
	for _, o := range m {
		if po, ok := o.(PhaseObserver); ok {
			po.OnPhaseBegin(path, round)
		}
	}
}

// OnPhaseEnd implements PhaseObserver.
func (m Multi) OnPhaseEnd(path string, round int) {
	for _, o := range m {
		if po, ok := o.(PhaseObserver); ok {
			po.OnPhaseEnd(path, round)
		}
	}
}

// OnRunStart implements RunObserver.
func (m Multi) OnRunStart(round int) {
	for _, o := range m {
		if ro, ok := o.(RunObserver); ok {
			ro.OnRunStart(round)
		}
	}
}

// OnRunEnd implements RunObserver.
func (m Multi) OnRunEnd(round int) {
	for _, o := range m {
		if ro, ok := o.(RunObserver); ok {
			ro.OnRunEnd(round)
		}
	}
}
