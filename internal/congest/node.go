package congest

import (
	"fmt"
	"math/rand"

	"congestmwc/internal/graph"
)

// nodeState is the engine-side state of one node: its communication
// neighbourhood, outgoing links, inbox, PRNG and the per-round scratch the
// handlers fill in (wake-up requests, links first written to this round).
// Handlers mutate only their own nodeState, which is what makes the
// parallel engine safe without locks.
type nodeState struct {
	neighbors []int       // deduplicated, sorted communication neighbours
	linkIdx   map[int]int // neighbour ID -> index into links
	links     []*link
	inbox     []Delivery
	rng       *rand.Rand
	wakes     []int   // wake-up rounds requested during handlers (merged post-round)
	touched   []*link // links first written to during this round's handlers
	program   Program
}

// Node is the node-local view handed to Program handlers. It is only valid
// for the duration of the handler invocation.
type Node struct {
	net *Network
	id  int
	st  *nodeState
}

// ID returns this node's identifier in [0, N).
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the network (global knowledge in
// CONGEST).
func (nd *Node) N() int { return nd.net.g.N() }

// Directed reports whether the input graph is directed (global knowledge).
func (nd *Node) Directed() bool { return nd.net.g.Directed() }

// Round returns the current global round number.
func (nd *Node) Round() int { return nd.net.now }

// Bandwidth returns the per-link word bandwidth (global knowledge).
func (nd *Node) Bandwidth() int { return nd.net.opts.Bandwidth }

// SharedSeed returns the network seed, modelling the shared randomness that
// the paper's randomized constructions assume.
func (nd *Node) SharedSeed() int64 { return nd.net.opts.Seed }

// Out returns the arcs of the input graph leaving this node. The slice must
// not be modified.
func (nd *Node) Out() []graph.Arc { return nd.net.g.Out(nd.id) }

// In returns the arcs of the input graph entering this node. The slice must
// not be modified.
func (nd *Node) In() []graph.Arc { return nd.net.g.In(nd.id) }

// Neighbors returns the deduplicated, sorted communication neighbours. The
// slice must not be modified.
func (nd *Node) Neighbors() []int { return nd.st.neighbors }

// Rand returns the node's PRNG.
func (nd *Node) Rand() *rand.Rand { return nd.st.rng }

// Send enqueues a message on the link to a communication neighbour.
// Transmission begins next round; a message of size s occupies the link for
// ceil(s/B) rounds. Send panics if `to` is not a neighbour — that is a
// programming error in an algorithm, not a runtime condition.
func (nd *Node) Send(to int, m Msg) {
	i, ok := nd.st.linkIdx[to]
	if !ok {
		panic(fmt.Sprintf("congest: node %d sending to non-neighbor %d", nd.id, to))
	}
	l := nd.st.links[i]
	l.queue = append(l.queue, m)
	if !l.enqueued {
		l.enqueued = true
		nd.st.touched = append(nd.st.touched, l)
	}
}

// SendTag is Send with an inline message construction.
func (nd *Node) SendTag(to int, tag int64, words ...int64) {
	nd.Send(to, Msg{Tag: tag, Words: words})
}

// QueueLen returns the number of messages currently queued on the link to
// the given neighbour (node-local knowledge: a sender knows what it has
// handed to its own network interface).
func (nd *Node) QueueLen(to int) int {
	i, ok := nd.st.linkIdx[to]
	if !ok {
		return 0
	}
	l := nd.st.links[i]
	return len(l.queue) - l.head
}

// WakeAt schedules a Tick for this node at the given (strictly future)
// round even if no message arrives.
func (nd *Node) WakeAt(round int) {
	if round <= nd.net.now {
		round = nd.net.now + 1
	}
	nd.st.wakes = append(nd.st.wakes, round)
}

// WakeNext schedules a Tick for the next round.
func (nd *Node) WakeNext() { nd.WakeAt(nd.net.now + 1) }
