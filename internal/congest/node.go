package congest

import (
	"fmt"
	"math/rand"

	"congestmwc/internal/graph"
)

// nodeState is the engine-side state of one node: its communication
// neighbourhood, inbox, PRNG and the per-round scratch the handlers fill in
// (wake-up requests, links first written to this round). The node's outgoing
// links live in the transport's flat link arena, in the contiguous ID range
// Network.linkOff[v]..Network.linkOff[v+1]; entry i of that range is the
// link to neighbors[i]. Handlers mutate only their own nodeState and their
// own outgoing links, which is what makes the parallel engine safe without
// locks.
type nodeState struct {
	neighbors []int // deduplicated, sorted communication neighbours
	inbox     []Delivery
	inWords   []int64 // arena backing the inbox's payload views, truncated with it
	rng       *rand.Rand
	wakes     []int   // wake-up rounds requested during handlers (drained post-handler)
	touched   []int32 // link IDs first written to during this round's handlers
	program   Program
	node      Node // reusable handle passed to handlers (avoids per-activation allocation)
}

// Node is the node-local view handed to Program handlers. It is only valid
// for the duration of the handler invocation.
type Node struct {
	net *Network
	id  int
	st  *nodeState
}

// ID returns this node's identifier in [0, N).
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the network (global knowledge in
// CONGEST).
func (nd *Node) N() int { return nd.net.g.N() }

// Directed reports whether the input graph is directed (global knowledge).
func (nd *Node) Directed() bool { return nd.net.g.Directed() }

// Round returns the current global round number.
func (nd *Node) Round() int { return nd.net.now }

// Bandwidth returns the per-link word bandwidth (global knowledge).
func (nd *Node) Bandwidth() int { return nd.net.opts.Bandwidth }

// SharedSeed returns the network seed, modelling the shared randomness that
// the paper's randomized constructions assume.
func (nd *Node) SharedSeed() int64 { return nd.net.opts.Seed }

// Out returns the arcs of the input graph leaving this node. The slice must
// not be modified.
func (nd *Node) Out() []graph.Arc { return nd.net.g.Out(nd.id) }

// In returns the arcs of the input graph entering this node. The slice must
// not be modified.
func (nd *Node) In() []graph.Arc { return nd.net.g.In(nd.id) }

// Comm returns the undirected communication adjacency of this node: one arc
// per incident input edge regardless of direction (for undirected graphs
// this equals Out). The slice must not be modified.
func (nd *Node) Comm() []graph.Arc { return nd.net.g.Comm(nd.id) }

// Neighbors returns the deduplicated, sorted communication neighbours. The
// slice must not be modified.
func (nd *Node) Neighbors() []int { return nd.st.neighbors }

// Rand returns the node's PRNG.
func (nd *Node) Rand() *rand.Rand { return nd.st.rng }

// linkTo returns the index of `to` in the node's sorted neighbor list, or
// -1. Binary search over the CSR neighbor row — no per-node lookup map.
func (nd *Node) linkTo(to int) int {
	nbrs := nd.st.neighbors
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbrs[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbrs) && nbrs[lo] == to {
		return lo
	}
	return -1
}

// Send enqueues a message on the link to a communication neighbour.
// Transmission begins next round; a message of size s occupies the link for
// ceil(s/B) rounds. The payload is copied into the link's words arena, so
// the caller keeps ownership of m.Words (and stack-allocated payloads never
// escape). Send panics if `to` is not a neighbour — that is a programming
// error in an algorithm, not a runtime condition.
func (nd *Node) Send(to int, m Msg) {
	i := nd.linkTo(to)
	if i < 0 {
		panic(fmt.Sprintf("congest: node %d sending to non-neighbor %d", nd.id, to))
	}
	net := nd.net
	id := net.linkOff[nd.id] + int32(i)
	l := &net.tr.links[id]
	off := int32(len(l.words))
	l.words = append(l.words, m.Words...)
	l.queue = append(l.queue, qmsg{tag: m.Tag, off: off, n: int32(len(m.Words))})
	if !l.enqueued {
		l.enqueued = true
		nd.st.touched = append(nd.st.touched, id)
	}
}

// SendTag is Send with an inline message construction.
func (nd *Node) SendTag(to int, tag int64, words ...int64) {
	nd.Send(to, Msg{Tag: tag, Words: words})
}

// QueueLen returns the number of messages currently queued on the link to
// the given neighbour (node-local knowledge: a sender knows what it has
// handed to its own network interface).
func (nd *Node) QueueLen(to int) int {
	i := nd.linkTo(to)
	if i < 0 {
		return 0
	}
	l := &nd.net.tr.links[nd.net.linkOff[nd.id]+int32(i)]
	return len(l.queue) - l.head
}

// WakeAt schedules a Tick for this node at the given (strictly future)
// round even if no message arrives.
func (nd *Node) WakeAt(round int) {
	if round <= nd.net.now {
		round = nd.net.now + 1
	}
	nd.st.wakes = append(nd.st.wakes, round)
}

// WakeNext schedules a Tick for the next round.
func (nd *Node) WakeNext() { nd.WakeAt(nd.net.now + 1) }
