package congest

import (
	"errors"
	"math/rand"
	"testing"

	"congestmwc/internal/gen"
)

// TestCalendar exercises the wake-up calendar directly: rounds come out in
// ascending order regardless of insertion order, buckets accumulate nodes,
// and take only answers for the exact head round.
func TestCalendar(t *testing.T) {
	c := newCalendar()
	if !c.empty() || c.next() != never {
		t.Fatalf("fresh calendar: empty=%v next=%d", c.empty(), c.next())
	}
	rng := rand.New(rand.NewSource(7))
	want := make(map[int][]int)
	for i := 0; i < 500; i++ {
		r, v := 1+rng.Intn(100), rng.Intn(10)
		c.schedule(r, v)
		want[r] = append(want[r], v)
	}
	if c.take(0) != nil {
		t.Fatalf("take(0) on head %d returned a bucket", c.next())
	}
	prev := 0
	for !c.empty() {
		r := c.next()
		if r <= prev {
			t.Fatalf("rounds out of order: %d after %d", r, prev)
		}
		if c.take(r-1) != nil {
			t.Fatalf("take(%d) answered for head %d", r-1, r)
		}
		b := c.take(r)
		if len(b) != len(want[r]) {
			t.Fatalf("round %d: bucket %v, want %d nodes", r, b, len(want[r]))
		}
		delete(want, r)
		c.recycle(b)
		prev = r
	}
	if len(want) != 0 {
		t.Fatalf("calendar drained but %d rounds unserved", len(want))
	}
}

// sleeperProgram idles for long wake-up gaps and then floods one token —
// the shape (long silences punctuated by bursts) that round skipping is
// for. Node 0 wakes at rounds stride, 2*stride, ..., bursts*stride; each
// wake-up floods a burst token that every node relays exactly once.
type sleeperProgram struct {
	stride, bursts int
	heard          []int // total deliveries per node (shared, distinct indices)

	next int            // node 0 only: next burst to emit
	seen map[int64]bool // node-local: bursts already relayed
}

func (p *sleeperProgram) Init(nd *Node) {
	p.seen = make(map[int64]bool)
	if nd.ID() == 0 {
		p.next = 1
		nd.WakeAt(p.stride)
	}
}

func (p *sleeperProgram) Deliver(nd *Node, d Delivery) {
	p.heard[nd.ID()]++
	if b := d.Msg.Tag; !p.seen[b] {
		p.seen[b] = true
		for _, u := range nd.Neighbors() {
			if u != d.From {
				nd.SendTag(u, b)
			}
		}
	}
}

func (p *sleeperProgram) Tick(nd *Node) {
	if nd.ID() != 0 || p.next > p.bursts || nd.Round() != p.next*p.stride {
		return
	}
	b := int64(p.next)
	p.seen[b] = true
	for _, u := range nd.Neighbors() {
		nd.SendTag(u, b)
	}
	p.next++
	if p.next <= p.bursts {
		nd.WakeAt(p.next * p.stride)
	}
}

// runSleeper runs the sleeper workload on a path and returns the network
// stats plus the per-node delivery counts.
func runSleeper(t *testing.T, opts Options) (Stats, []int, int) {
	t.Helper()
	const n, stride, bursts = 9, 1000, 3
	g := gen.Ring(n, false, false, 1)
	net, err := NewNetwork(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	heard := make([]int, n)
	progs := make([]Program, n)
	for v := range progs {
		progs[v] = &sleeperProgram{stride: stride, bursts: bursts, heard: heard}
	}
	rounds, err := net.Run(progs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net.Stats(), heard, rounds
}

// TestRoundSkippingMatchesStepwise is the scheduler's core equivalence
// claim on a gap-heavy workload: event-driven round skipping and stepwise
// iteration produce identical Stats, round counts and algorithm outputs,
// on both engines.
func TestRoundSkippingMatchesStepwise(t *testing.T) {
	baseStats, baseHeard, baseRounds := runSleeper(t, Options{Seed: 3, Stepwise: true})
	if baseStats.Rounds < 3000 {
		t.Fatalf("workload not gap-heavy: only %d rounds", baseStats.Rounds)
	}
	for _, parallel := range []bool{false, true} {
		for _, stepwise := range []bool{false, true} {
			if stepwise && !parallel {
				continue // the baseline itself
			}
			s, h, r := runSleeper(t, Options{Seed: 3, Stepwise: stepwise, Parallel: parallel})
			if s != baseStats || r != baseRounds {
				t.Errorf("parallel=%v stepwise=%v: stats %+v rounds %d, want %+v rounds %d",
					parallel, stepwise, s, r, baseStats, baseRounds)
			}
			for v := range h {
				if h[v] != baseHeard[v] {
					t.Errorf("parallel=%v stepwise=%v: node %d heard %d, want %d",
						parallel, stepwise, v, h[v], baseHeard[v])
				}
			}
		}
	}
}

// gapRecorder sums executed rounds and gap-adjusted rounds from the
// observer stream.
type gapRecorder struct {
	executed int
	total    int // sum of 1+Gap, must equal Stats.Rounds
	maxGap   int
}

func (g *gapRecorder) OnRound(int)                  { g.executed++ }
func (g *gapRecorder) OnMessage(int, int, int, Msg) {}
func (g *gapRecorder) OnRoundEnd(_ int, rs RoundStats) {
	g.total += 1 + rs.Gap
	if rs.Gap > g.maxGap {
		g.maxGap = rs.Gap
	}
}

// TestGapSemantics pins the observer contract of round skipping: OnRound /
// OnRoundEnd fire for executed rounds only, RoundStats.Gap accounts for
// every skipped round (summing 1+Gap reproduces Stats.Rounds), and under
// Stepwise every round executes with Gap == 0.
func TestGapSemantics(t *testing.T) {
	const wake = 5000
	run := func(stepwise bool) (*gapRecorder, Stats) {
		g := gen.Ring(4, false, false, 1)
		net, err := NewNetwork(g, Options{Stepwise: stepwise})
		if err != nil {
			t.Fatal(err)
		}
		rec := &gapRecorder{}
		net.SetObserver(rec)
		done := false
		progs := progsFor(4, Funcs{
			OnInit: func(nd *Node) {
				if nd.ID() == 0 {
					nd.WakeAt(wake)
				}
			},
			OnTick: func(nd *Node) {
				if nd.ID() == 0 && !done {
					done = true
					nd.SendTag(nd.Neighbors()[0], 1)
				}
			},
		})
		if _, err := net.Run(progs, 0); err != nil {
			t.Fatal(err)
		}
		return rec, net.Stats()
	}

	rec, s := run(false)
	if s.Rounds != wake+1 {
		t.Fatalf("skipping: %d rounds, want %d", s.Rounds, wake+1)
	}
	if rec.total != s.Rounds {
		t.Errorf("skipping: sum of 1+Gap = %d, want Stats.Rounds %d", rec.total, s.Rounds)
	}
	if rec.executed != 2 {
		t.Errorf("skipping: %d executed rounds, want 2 (wake + delivery)", rec.executed)
	}
	if rec.maxGap != wake-1 {
		t.Errorf("skipping: max gap %d, want %d", rec.maxGap, wake-1)
	}

	recS, sS := run(true)
	if sS != s {
		t.Errorf("stepwise stats %+v != skipping stats %+v", sS, s)
	}
	if recS.executed != sS.Rounds || recS.maxGap != 0 {
		t.Errorf("stepwise: executed %d (want %d), max gap %d (want 0)",
			recS.executed, sS.Rounds, recS.maxGap)
	}
}

// TestBudgetEquivalence pins the budget contract under skipping: when the
// next event lies beyond the budget the run still consumes exactly the
// budgeted number of rounds before returning ErrBudget, as stepwise
// iteration would.
func TestBudgetEquivalence(t *testing.T) {
	for _, stepwise := range []bool{false, true} {
		g := gen.Ring(3, false, false, 1)
		net, err := NewNetwork(g, Options{Stepwise: stepwise})
		if err != nil {
			t.Fatal(err)
		}
		rec := &gapRecorder{}
		net.SetObserver(rec)
		progs := progsFor(3, Funcs{
			OnInit: func(nd *Node) { nd.WakeAt(1_000_000) },
		})
		const budget = 64
		rounds, err := net.Run(progs, budget)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("stepwise=%v: err = %v, want ErrBudget", stepwise, err)
		}
		if rounds != budget || net.Stats().Rounds != budget {
			t.Errorf("stepwise=%v: consumed %d rounds (stats %d), want %d",
				stepwise, rounds, net.Stats().Rounds, budget)
		}
		if rec.total != budget {
			t.Errorf("stepwise=%v: observer accounted %d rounds, want %d",
				stepwise, rec.total, budget)
		}
	}
}
