// Package congest simulates the CONGEST model of distributed computing
// (Peleg 2000; Section 1.1 of the paper): a synchronous network of n nodes
// in which, per round, each node may send one Theta(log n)-bit message to
// each neighbour. Nodes have unbounded local computation; complexity is the
// number of rounds until termination.
//
// # Messages and bandwidth
//
// A message is a tag plus a bounded slice of 64-bit words; its size is
// 1+len(Words) words. The per-round bandwidth of each directed link is B
// words (Options.Bandwidth, default 4 — one Theta(log n + log W)-bit payload
// plus its tag). Messages larger than B words are legal: the transport
// fragments them, occupying the link for ceil(size/B) consecutive rounds.
// This matches the paper's accounting, e.g. the O(log n)-word Q(v) message
// of Algorithm 3 costs O(log n) rounds to cross an edge.
//
// Links are FIFO: pipelined protocols (broadcast of M values in O(M+D),
// multi-source BFS in O(k+h)) get their pipelining behaviour directly from
// the transport queue.
//
// Message payloads are copied into per-link arenas on Send and into
// per-receiver inbox arenas on delivery, so the steady-state delivery path
// performs no heap allocation; the price is a lifetime contract — a
// delivered Msg.Words is valid only inside the Deliver (or
// Observer.OnMessage) invocation that receives it, and must be copied if
// retained (see Msg).
//
// # Node programs
//
// Distributed algorithms are written as one Program per node. A Program
// sees only node-local information through the Node handle: its own ID, n,
// its incident arcs of the input graph, delivered messages, a per-node PRNG,
// and the current round number (global round numbering is standard in the
// synchronous model). Programs are driven by Deliver (once per received
// message) and Tick (once per round in which the node is active). A node is
// active in a round when it received at least one message or had scheduled a
// wake-up via WakeAt.
//
// # Layering
//
// The simulator core is split into three layers behind the one Network
// facade:
//
//   - the transport (transport.go): per-link FIFO queues, fragmentation
//     credit, cut metering, and the sorted set of links with pending
//     traffic;
//   - the scheduler (sched.go): a round calendar over pending wake-up
//     rounds plus the transport's next-delivery round, which lets the run
//     loop jump directly to the next round in which anything can happen,
//     charging the skipped gap to Stats.Rounds in one step (see "Round
//     skipping" below);
//   - the execution engines (engine.go, engine_seq.go, engine_par.go): an
//     engine interface with a deterministic sequential implementation and a
//     concurrent one that executes node handlers on worker goroutines with
//     a barrier per round, selected by Options.Parallel. Handlers mutate
//     only node-local state (their own program state, PRNG and outgoing
//     link queues), so both engines deliver messages in the same canonical
//     order (ascending sender ID, FIFO within a link) and produce identical
//     results and round counts.
//
// # Round skipping
//
// Rounds in which no link can complete a delivery and no wake-up fires are
// empty: no handler runs and no statistic other than Stats.Rounds changes.
// Such rounds are common under the paper's scaling and stretching
// reductions (Section 5), where simulated traversal times are proportional
// to stretched distances. The scheduler advances the clock over an empty
// gap in one step: round counts, delivery rounds, message order, Stats and
// algorithm outputs are bit-identical to iterating every round (asserted by
// the equivalence tests against Options.Stepwise), but wall clock is
// proportional to events rather than elapsed rounds. Observers see executed
// rounds only; the length of the preceding skipped gap is reported in
// RoundStats.Gap.
package congest

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"

	"congestmwc/internal/graph"
)

// Errors returned by the network. ErrBudget signals that an algorithm did
// not reach quiescence within its round budget (an algorithm bug or an
// undersized budget, never normal operation). ErrCanceled signals that the
// context installed via SetContext was done; the returned error also wraps
// the context's own error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) distinguish the two causes.
var (
	ErrDisconnected = errors.New("congest: communication graph is not connected")
	ErrBudget       = errors.New("congest: round budget exhausted before quiescence")
	ErrCanceled     = errors.New("congest: run canceled")
)

// Msg is one CONGEST message: an algorithm-defined tag plus payload words.
//
// On Send the payload is copied into the sending link's arena, so the
// sender keeps ownership of Words. On delivery, the payload is copied again
// into the receiving node's inbox arena and Words is a view into it: valid
// only for the duration of the Deliver invocation (and of a synchronous
// Observer.OnMessage callback). Handlers that retain a payload beyond the
// handler must copy it.
type Msg struct {
	Tag   int64
	Words []int64
}

// Size returns the size of the message in words (1 for the tag plus the
// payload length).
func (m Msg) Size() int { return 1 + len(m.Words) }

// Delivery is a received message together with its sender. Msg.Words is
// only valid for the duration of the Deliver call that receives it; see
// Msg.
type Delivery struct {
	From int
	Msg  Msg
}

// Program is the per-node logic of a distributed algorithm.
type Program interface {
	// Init runs once before the first round. It may send messages and
	// schedule wake-ups.
	Init(nd *Node)
	// Deliver runs once per message delivered to the node this round, in
	// canonical order (ascending sender ID, FIFO per link), before Tick.
	Deliver(nd *Node, d Delivery)
	// Tick runs once per round in which the node is active (it received a
	// message or had a wake-up scheduled for this round), after all
	// deliveries of the round.
	Tick(nd *Node)
}

// Options configures a Network.
type Options struct {
	// Bandwidth is the per-round word capacity of each directed link.
	// Defaults to 4 — one tag plus a constant number of payload words, the
	// concrete instantiation of "one Theta(log n)-bit message per edge per
	// round" (a (source, distance) pair is 2 log n bits).
	Bandwidth int
	// Seed drives every PRNG in the network. Node v's PRNG is seeded with a
	// value derived from Seed and v; algorithms may also use Seed directly
	// as shared randomness (permitted by the model).
	Seed int64
	// Parallel selects the concurrent engine (worker goroutines + round
	// barrier) instead of the sequential loop.
	Parallel bool
	// Workers bounds the concurrent engine's worker count; defaults to
	// GOMAXPROCS.
	Workers int
	// Stepwise disables event-driven round skipping: the run loop iterates
	// every synchronous round one by one, including empty ones. This is a
	// debug/reference mode — results, Stats and round counts are identical
	// either way (asserted by the scheduler equivalence tests) — but wall
	// clock becomes proportional to elapsed rounds instead of events.
	Stepwise bool
}

// Stats accumulates cost measures across all Run calls on a Network.
type Stats struct {
	Rounds      int // synchronous rounds elapsed (including skipped gaps)
	Messages    int // messages delivered
	Words       int // words delivered
	CutWords    int // words that crossed the metered cut (0 if no cut set)
	Activations int // node activations (instrumentation)
}

// Network is a CONGEST network over the communication graph of g. It can
// run several Programs in sequence (the phases of a composite algorithm),
// accumulating Stats across runs. It is a facade over the three layers of
// the simulator core: the transport, the round calendar and the execution
// engine.
type Network struct {
	g     *graph.Graph
	opts  Options
	nodes []*nodeState
	stats Stats
	now   int

	tr  transport // flat link arena + pending set + delivery schedule
	cal calendar  // pending wake-up rounds
	eng engine    // handler execution strategy (sequential / worker pool)

	// linkOff is the CSR offset array over the transport's link arena:
	// node v's outgoing links are tr.links[linkOff[v]:linkOff[v+1]], entry i
	// being the link to the i-th sorted communication neighbour. Link IDs
	// are therefore globally sorted by (owner, to) — canonical delivery
	// order is ascending ID order.
	linkOff []int32

	all       []int          // the identity permutation [0..n), for Init phases
	activeBuf []int          // scratch: the round's receivers and woken nodes
	scratch   []roundScratch // per-worker handler outboxes, merged by afterHandlers
	epoch     []int64        // per-node stamp deduplicating the active list (see runRound)
	epochN    int64

	ctx  context.Context // abort signal installed via SetContext (may be nil)
	done <-chan struct{} // ctx.Done(), cached; nil when no context is set

	obs      Observer
	msgObs   Observer      // obs, or nil when its MessageFilter declines messages
	roundObs RoundObserver // obs's optional extensions, resolved in SetObserver
	phaseObs PhaseObserver
	runObs   RunObserver
	phases   []string // stack of open phase names (BeginPhase/EndPhase)
}

// NewNetwork validates connectivity and builds the network.
func NewNetwork(g *graph.Graph, opts Options) (*Network, error) {
	if !g.ConnectedComm() {
		return nil, ErrDisconnected
	}
	if opts.Bandwidth <= 0 {
		opts.Bandwidth = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	net := &Network{
		g:       g,
		opts:    opts,
		nodes:   make([]*nodeState, n),
		tr:      newTransport(opts.Bandwidth),
		cal:     newCalendar(),
		all:     make([]int, n),
		linkOff: make([]int32, n+1),
	}
	scratches := 1
	if opts.Parallel {
		net.eng = &parEngine{workers: workers}
		scratches = workers
	} else {
		net.eng = seqEngine{}
	}
	net.scratch = make([]roundScratch, scratches)
	net.epoch = make([]int64, n)
	// Pass 1: per-node sorted distinct neighbours (Comm rows are sorted by
	// destination, so deduplication is adjacent) and the link-CSR offsets.
	neighbors := make([][]int, n)
	total := 0
	for v := 0; v < n; v++ {
		net.all[v] = v
		comm := g.Comm(v)
		nbrs := make([]int, 0, len(comm))
		last := -1
		for _, a := range comm {
			if a.To != last {
				nbrs = append(nbrs, a.To)
				last = a.To
			}
		}
		neighbors[v] = nbrs
		net.linkOff[v] = int32(total)
		total += len(nbrs)
	}
	net.linkOff[n] = int32(total)
	// Pass 2: the flat link arena (IDs in ascending (owner, to) order) and
	// the per-node state, including the reusable handler-facing Node.
	net.tr.links = make([]link, total)
	for v := 0; v < n; v++ {
		for i, u := range neighbors[v] {
			net.tr.links[net.linkOff[v]+int32(i)] = link{owner: int32(v), to: int32(u)}
		}
		st := &nodeState{
			neighbors: neighbors[v],
			rng:       rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(v))),
		}
		st.node = Node{net: net, id: v, st: st}
		net.nodes[v] = st
	}
	return net, nil
}

// SetContext installs ctx as the abort signal for subsequent Run calls
// (nil removes it). Once ctx is done, an in-flight Run stops within one
// executed round and returns an error wrapping both ErrCanceled and
// ctx.Err(); Stats then reflect only the work actually executed. A canceled
// network may hold undelivered link traffic and pending wake-ups, so it
// must not be reused for further runs.
func (net *Network) SetContext(ctx context.Context) {
	if ctx == nil {
		net.ctx, net.done = nil, nil
		return
	}
	net.ctx, net.done = ctx, ctx.Done()
}

// canceled reports whether the installed abort context is done. It is
// called at round boundaries by the run loop and between handler batches by
// both engines; the channel select is safe from worker goroutines.
func (net *Network) canceled() bool {
	if net.done == nil {
		return false
	}
	select {
	case <-net.done:
		return true
	default:
		return false
	}
}

// Graph returns the input graph the network was built from.
func (net *Network) Graph() *graph.Graph { return net.g }

// Options returns the options the network was built with.
func (net *Network) Options() Options { return net.opts }

// Stats returns the accumulated statistics.
func (net *Network) Stats() Stats { return net.stats }

// Round returns the current global round number.
func (net *Network) Round() int { return net.now }

// ChargeRounds adds extra rounds to the statistics without running anything.
// Composite algorithms use it to account for costs that the orchestration
// performs via global knowledge that a real deployment would obtain with a
// known-cost primitive (this repository uses it only in documented places).
func (net *Network) ChargeRounds(r int) {
	net.now += r
	net.stats.Rounds += r
}

// MeterCut marks the cut to meter: side[v] gives v's side; every word
// delivered between nodes on different sides increments Stats.CutWords.
// Pass nil to stop metering.
func (net *Network) MeterCut(side []bool) {
	for i := range net.tr.links {
		l := &net.tr.links[i]
		l.cut = side != nil && side[l.owner] != side[l.to]
	}
}

// sortInts sorts a deduplicated active list in place. Active lists are
// usually small (the round's receivers), where insertion sort wins over the
// generic sort's partitioning machinery; large lists fall through to the
// standard sort.
func sortInts(s []int) {
	if len(s) > 48 {
		sort.Ints(s)
		return
	}
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}
