// Package congest simulates the CONGEST model of distributed computing
// (Peleg 2000; Section 1.1 of the paper): a synchronous network of n nodes
// in which, per round, each node may send one Theta(log n)-bit message to
// each neighbour. Nodes have unbounded local computation; complexity is the
// number of rounds until termination.
//
// # Messages and bandwidth
//
// A message is a tag plus a bounded slice of 64-bit words; its size is
// 1+len(Words) words. The per-round bandwidth of each directed link is B
// words (Options.Bandwidth, default 4 — one Theta(log n + log W)-bit payload
// plus its tag). Messages larger than B words are legal: the transport
// fragments them, occupying the link for ceil(size/B) consecutive rounds.
// This matches the paper's accounting, e.g. the O(log n)-word Q(v) message
// of Algorithm 3 costs O(log n) rounds to cross an edge.
//
// Links are FIFO: pipelined protocols (broadcast of M values in O(M+D),
// multi-source BFS in O(k+h)) get their pipelining behaviour directly from
// the transport queue.
//
// # Node programs
//
// Distributed algorithms are written as one Program per node. A Program
// sees only node-local information through the Node handle: its own ID, n,
// its incident arcs of the input graph, delivered messages, a per-node PRNG,
// and the current round number (global round numbering is standard in the
// synchronous model). Programs are driven by Deliver (once per received
// message) and Tick (once per round in which the node is active). A node is
// active in a round when it received at least one message or had scheduled a
// wake-up via WakeAt.
//
// # Engines
//
// The same programs run on two engines selected by Options.Parallel: a
// deterministic sequential round loop, and a concurrent engine that executes
// node handlers on worker goroutines with a barrier per round. Handlers
// mutate only node-local state (their own program state, PRNG and outgoing
// link queues), so both engines deliver messages in the same canonical order
// (ascending sender ID, FIFO within a link) and produce identical results
// and round counts.
package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"congestmwc/internal/graph"
)

// Errors returned by the network. ErrBudget signals that an algorithm did
// not reach quiescence within its round budget (an algorithm bug or an
// undersized budget, never normal operation).
var (
	ErrDisconnected = errors.New("congest: communication graph is not connected")
	ErrBudget       = errors.New("congest: round budget exhausted before quiescence")
)

// Msg is one CONGEST message: an algorithm-defined tag plus payload words.
type Msg struct {
	Tag   int64
	Words []int64
}

// Size returns the size of the message in words (1 for the tag plus the
// payload length).
func (m Msg) Size() int { return 1 + len(m.Words) }

// Delivery is a received message together with its sender.
type Delivery struct {
	From int
	Msg  Msg
}

// Program is the per-node logic of a distributed algorithm.
type Program interface {
	// Init runs once before the first round. It may send messages and
	// schedule wake-ups.
	Init(nd *Node)
	// Deliver runs once per message delivered to the node this round, in
	// canonical order (ascending sender ID, FIFO per link), before Tick.
	Deliver(nd *Node, d Delivery)
	// Tick runs once per round in which the node is active (it received a
	// message or had a wake-up scheduled for this round), after all
	// deliveries of the round.
	Tick(nd *Node)
}

// Options configures a Network.
type Options struct {
	// Bandwidth is the per-round word capacity of each directed link.
	// Defaults to 4 — one tag plus a constant number of payload words, the
	// concrete instantiation of "one Theta(log n)-bit message per edge per
	// round" (a (source, distance) pair is 2 log n bits).
	Bandwidth int
	// Seed drives every PRNG in the network. Node v's PRNG is seeded with a
	// value derived from Seed and v; algorithms may also use Seed directly
	// as shared randomness (permitted by the model).
	Seed int64
	// Parallel selects the concurrent engine (worker goroutines + round
	// barrier) instead of the sequential loop.
	Parallel bool
	// Workers bounds the concurrent engine's worker count; defaults to
	// GOMAXPROCS.
	Workers int
}

// Stats accumulates cost measures across all Run calls on a Network.
type Stats struct {
	Rounds      int // synchronous rounds elapsed
	Messages    int // messages delivered
	Words       int // words delivered
	CutWords    int // words that crossed the metered cut (0 if no cut set)
	Activations int // node activations (instrumentation)
}

type link struct {
	owner, to int
	queue     []Msg
	credit    int
	enqueued  bool // tracked in Network.queued or a node's touched list
	cut       bool // crosses the metered cut
}

type nodeState struct {
	neighbors []int       // deduplicated, sorted communication neighbours
	linkIdx   map[int]int // neighbour ID -> index into links
	links     []*link
	inbox     []Delivery
	rng       *rand.Rand
	wakes     []int   // wake-up rounds requested during handlers (merged post-round)
	touched   []*link // links first written to during this round's handlers
	program   Program
}

// Network is a CONGEST network over the communication graph of g. It can
// run several Programs in sequence (the phases of a composite algorithm),
// accumulating Stats across runs.
type Network struct {
	g       *graph.Graph
	opts    Options
	nodes   []*nodeState
	stats   Stats
	now     int
	wakeups map[int][]int // future round -> nodes to wake
	queued  []*link       // links with pending traffic, kept sorted
	workers int

	obs      Observer
	msgObs   Observer      // obs, or nil when its MessageFilter declines messages
	roundObs RoundObserver // obs's optional extensions, resolved in SetObserver
	phaseObs PhaseObserver
	runObs   RunObserver
	phases   []string // stack of open phase names (BeginPhase/EndPhase)

	// Per-round congestion figures, reset at the start of every round and
	// reported through RoundObserver.
	roundMaxLink  int // most words delivered over one link this round
	roundMaxQueue int // longest link backlog left after transmit
}

// NewNetwork validates connectivity and builds the network.
func NewNetwork(g *graph.Graph, opts Options) (*Network, error) {
	if !g.ConnectedComm() {
		return nil, ErrDisconnected
	}
	if opts.Bandwidth <= 0 {
		opts.Bandwidth = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	net := &Network{
		g:       g,
		opts:    opts,
		nodes:   make([]*nodeState, g.N()),
		wakeups: make(map[int][]int),
		workers: workers,
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int]bool)
		var nbrs []int
		for _, a := range g.Comm(v) {
			if !seen[a.To] {
				seen[a.To] = true
				nbrs = append(nbrs, a.To)
			}
		}
		sort.Ints(nbrs)
		st := &nodeState{
			neighbors: nbrs,
			linkIdx:   make(map[int]int, len(nbrs)),
			links:     make([]*link, len(nbrs)),
			rng:       rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(v))),
		}
		for i, u := range nbrs {
			st.linkIdx[u] = i
			st.links[i] = &link{owner: v, to: u}
		}
		net.nodes[v] = st
	}
	return net, nil
}

// Graph returns the input graph the network was built from.
func (net *Network) Graph() *graph.Graph { return net.g }

// Options returns the options the network was built with.
func (net *Network) Options() Options { return net.opts }

// Stats returns the accumulated statistics.
func (net *Network) Stats() Stats { return net.stats }

// Round returns the current global round number.
func (net *Network) Round() int { return net.now }

// ChargeRounds adds extra rounds to the statistics without running anything.
// Composite algorithms use it to account for costs that the orchestration
// performs via global knowledge that a real deployment would obtain with a
// known-cost primitive (this repository uses it only in documented places).
func (net *Network) ChargeRounds(r int) {
	net.now += r
	net.stats.Rounds += r
}

// MeterCut marks the cut to meter: side[v] gives v's side; every word
// delivered between nodes on different sides increments Stats.CutWords.
// Pass nil to stop metering.
func (net *Network) MeterCut(side []bool) {
	for v, st := range net.nodes {
		for _, l := range st.links {
			l.cut = side != nil && side[v] != side[l.to]
		}
	}
}

// Run executes one Program per node until quiescence: no queued link
// traffic and no pending wake-ups. budget caps the number of additional
// rounds; budget <= 0 selects a generous default. Returns the number of
// rounds this run consumed.
func (net *Network) Run(progs []Program, budget int) (int, error) {
	n := net.g.N()
	if len(progs) != n {
		return 0, fmt.Errorf("congest: %d programs for %d nodes", len(progs), n)
	}
	if budget <= 0 {
		budget = 1000*n + 1_000_000
	}
	start := net.now
	if net.runObs != nil {
		net.runObs.OnRunStart(net.now)
	}
	for v, st := range net.nodes {
		st.program = progs[v]
		st.inbox = st.inbox[:0]
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	// Init phase: local computation before round 1 of this run; sends made
	// here enter the link queues and are delivered from the next round on.
	net.runHandlers(all, true)
	net.afterHandlers(all)

	for len(net.queued) > 0 || len(net.wakeups) > 0 {
		if net.now-start >= budget {
			if net.runObs != nil {
				net.runObs.OnRunEnd(net.now)
			}
			return net.now - start, fmt.Errorf("%w (%d rounds)", ErrBudget, budget)
		}
		net.now++
		net.stats.Rounds++
		if net.obs != nil {
			net.obs.OnRound(net.now)
		}
		before := net.stats
		net.roundMaxLink, net.roundMaxQueue = 0, 0
		active := net.transmit()
		if wk, ok := net.wakeups[net.now]; ok {
			delete(net.wakeups, net.now)
			active = append(active, wk...)
		}
		active = sortedUnique(active)
		net.runHandlers(active, false)
		net.afterHandlers(active)
		net.stats.Activations += len(active)
		if net.roundObs != nil {
			net.roundObs.OnRoundEnd(net.now, RoundStats{
				Messages:     net.stats.Messages - before.Messages,
				Words:        net.stats.Words - before.Words,
				CutWords:     net.stats.CutWords - before.CutWords,
				Active:       len(active),
				MaxLinkWords: net.roundMaxLink,
				MaxQueueLen:  net.roundMaxQueue,
			})
		}
	}
	for _, st := range net.nodes {
		st.program = nil
	}
	if net.runObs != nil {
		net.runObs.OnRunEnd(net.now)
	}
	return net.now - start, nil
}

// runHandlers invokes Deliver/Tick (or Init) for each node in ids, either
// sequentially or on worker goroutines. Handlers only mutate node-local
// state, so parallel execution is safe and deterministic.
func (net *Network) runHandlers(ids []int, init bool) {
	handle := func(v int) {
		st := net.nodes[v]
		nd := &Node{net: net, id: v, st: st}
		if init {
			st.program.Init(nd)
			return
		}
		for _, d := range st.inbox {
			st.program.Deliver(nd, d)
		}
		st.program.Tick(nd)
		st.inbox = st.inbox[:0]
	}
	if !net.opts.Parallel || len(ids) < 2 {
		for _, v := range ids {
			handle(v)
		}
		return
	}
	workers := net.workers
	if workers > len(ids) {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			for _, v := range part {
				handle(v)
			}
		}(ids[lo:hi])
	}
	wg.Wait()
}

// afterHandlers merges per-node wake-up requests and newly-touched links
// into the network-global structures (single-threaded).
func (net *Network) afterHandlers(ids []int) {
	for _, v := range ids {
		st := net.nodes[v]
		for _, r := range st.wakes {
			net.wakeups[r] = append(net.wakeups[r], v)
		}
		st.wakes = st.wakes[:0]
		net.queued = append(net.queued, st.touched...)
		st.touched = st.touched[:0]
	}
	sort.Slice(net.queued, func(i, j int) bool {
		if net.queued[i].owner != net.queued[j].owner {
			return net.queued[i].owner < net.queued[j].owner
		}
		return net.queued[i].to < net.queued[j].to
	})
}

// transmit advances every queued link by one round of bandwidth and places
// completed messages in destination inboxes. Returns the destinations that
// received at least one message (with duplicates).
func (net *Network) transmit() []int {
	if len(net.queued) == 0 {
		return nil
	}
	b := net.opts.Bandwidth
	var receivers []int
	remaining := net.queued[:0]
	for _, l := range net.queued {
		l.credit += b
		delivered := false
		linkWords := 0
		for len(l.queue) > 0 && l.queue[0].Size() <= l.credit {
			m := l.queue[0]
			l.queue = l.queue[1:]
			l.credit -= m.Size()
			dst := net.nodes[l.to]
			dst.inbox = append(dst.inbox, Delivery{From: l.owner, Msg: m})
			if net.msgObs != nil {
				net.msgObs.OnMessage(net.now, l.owner, l.to, m)
			}
			net.stats.Messages++
			net.stats.Words += m.Size()
			linkWords += m.Size()
			if l.cut {
				net.stats.CutWords += m.Size()
			}
			delivered = true
		}
		if linkWords > net.roundMaxLink {
			net.roundMaxLink = linkWords
		}
		if delivered {
			receivers = append(receivers, l.to)
		}
		if len(l.queue) == 0 {
			l.credit = 0
			l.enqueued = false
			l.queue = nil
		} else {
			if len(l.queue) > net.roundMaxQueue {
				net.roundMaxQueue = len(l.queue)
			}
			remaining = append(remaining, l)
		}
	}
	net.queued = remaining
	return receivers
}

func sortedUnique(s []int) []int {
	if len(s) == 0 {
		return s
	}
	sort.Ints(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Node is the node-local view handed to Program handlers. It is only valid
// for the duration of the handler invocation.
type Node struct {
	net *Network
	id  int
	st  *nodeState
}

// ID returns this node's identifier in [0, N).
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the network (global knowledge in
// CONGEST).
func (nd *Node) N() int { return nd.net.g.N() }

// Directed reports whether the input graph is directed (global knowledge).
func (nd *Node) Directed() bool { return nd.net.g.Directed() }

// Round returns the current global round number.
func (nd *Node) Round() int { return nd.net.now }

// Bandwidth returns the per-link word bandwidth (global knowledge).
func (nd *Node) Bandwidth() int { return nd.net.opts.Bandwidth }

// SharedSeed returns the network seed, modelling the shared randomness that
// the paper's randomized constructions assume.
func (nd *Node) SharedSeed() int64 { return nd.net.opts.Seed }

// Out returns the arcs of the input graph leaving this node. The slice must
// not be modified.
func (nd *Node) Out() []graph.Arc { return nd.net.g.Out(nd.id) }

// In returns the arcs of the input graph entering this node. The slice must
// not be modified.
func (nd *Node) In() []graph.Arc { return nd.net.g.In(nd.id) }

// Neighbors returns the deduplicated, sorted communication neighbours. The
// slice must not be modified.
func (nd *Node) Neighbors() []int { return nd.st.neighbors }

// Rand returns the node's PRNG.
func (nd *Node) Rand() *rand.Rand { return nd.st.rng }

// Send enqueues a message on the link to a communication neighbour.
// Transmission begins next round; a message of size s occupies the link for
// ceil(s/B) rounds. Send panics if `to` is not a neighbour — that is a
// programming error in an algorithm, not a runtime condition.
func (nd *Node) Send(to int, m Msg) {
	i, ok := nd.st.linkIdx[to]
	if !ok {
		panic(fmt.Sprintf("congest: node %d sending to non-neighbor %d", nd.id, to))
	}
	l := nd.st.links[i]
	l.queue = append(l.queue, m)
	if !l.enqueued {
		l.enqueued = true
		nd.st.touched = append(nd.st.touched, l)
	}
}

// SendTag is Send with an inline message construction.
func (nd *Node) SendTag(to int, tag int64, words ...int64) {
	nd.Send(to, Msg{Tag: tag, Words: words})
}

// QueueLen returns the number of messages currently queued on the link to
// the given neighbour (node-local knowledge: a sender knows what it has
// handed to its own network interface).
func (nd *Node) QueueLen(to int) int {
	i, ok := nd.st.linkIdx[to]
	if !ok {
		return 0
	}
	return len(nd.st.links[i].queue)
}

// WakeAt schedules a Tick for this node at the given (strictly future)
// round even if no message arrives.
func (nd *Node) WakeAt(round int) {
	if round <= nd.net.now {
		round = nd.net.now + 1
	}
	nd.st.wakes = append(nd.st.wakes, round)
}

// WakeNext schedules a Tick for the next round.
func (nd *Node) WakeNext() { nd.WakeAt(nd.net.now + 1) }
