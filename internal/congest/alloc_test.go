package congest

import (
	"testing"

	"congestmwc/internal/graph"
)

// pingPong bounces a fixed-size message back to its sender on every
// delivery, producing a permanent steady-state traffic pattern: the number
// of in-flight messages is constant, every link arena reaches its high-water
// mark within a few rounds, and from then on a round must not allocate.
type pingPong struct {
	Base
}

func (p *pingPong) Init(nd *Node) {
	if nd.ID() == 0 {
		for _, u := range nd.Neighbors() {
			nd.SendTag(u, 1, 7, 11, 13)
		}
	}
}

func (p *pingPong) Deliver(nd *Node, d Delivery) {
	w := d.Msg.Words
	nd.SendTag(d.From, d.Msg.Tag, w[0], w[1], w[2])
}

// newPingPongNet builds a ring network with ping-pong programs installed and
// the init phase executed, ready for runRound driving.
func newPingPongNet(tb testing.TB, n int, opts Options) *Network {
	tb.Helper()
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{From: i, To: (i + 1) % n}
	}
	g, err := graph.Build(n, edges, graph.Options{})
	if err != nil {
		tb.Fatalf("build ring: %v", err)
	}
	net, err := NewNetwork(g, opts)
	if err != nil {
		tb.Fatalf("new network: %v", err)
	}
	prog := &pingPong{}
	for _, st := range net.nodes {
		st.program = prog
	}
	net.eng.runHandlers(net, net.all, true)
	net.afterHandlers()
	return net
}

// TestTransportRoundZeroAlloc asserts the issue's zero-allocation goal: once
// arenas have warmed up, executing a round — transmit, handler execution,
// sends, pending-set merge — performs zero heap allocations.
func TestTransportRoundZeroAlloc(t *testing.T) {
	net := newPingPongNet(t, 16, Options{Seed: 1})
	for i := 0; i < 64; i++ { // warm up arenas to steady state
		net.runRound(net.now + 1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		net.runRound(net.now + 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state round allocates: %v allocs/round, want 0", allocs)
	}
}

// BenchmarkTransportRound measures the per-round cost of the transport and
// engine machinery alone (trivial handlers, constant traffic). Run with
// -benchmem: allocs/op must be 0.
func BenchmarkTransportRound(b *testing.B) {
	net := newPingPongNet(b, 64, Options{Seed: 1})
	for i := 0; i < 64; i++ {
		net.runRound(net.now + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.runRound(net.now + 1)
	}
}
