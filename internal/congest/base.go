package congest

// Base is a Program with no-op handlers, to be embedded by programs that
// only need a subset of the hooks.
type Base struct{}

// Init implements Program.
func (Base) Init(*Node) {}

// Deliver implements Program.
func (Base) Deliver(*Node, Delivery) {}

// Tick implements Program.
func (Base) Tick(*Node) {}

var _ Program = Base{}
