package congest

// Funcs adapts plain functions to the Program interface, for small protocol
// phases that do not warrant a named type. Nil fields are no-ops.
type Funcs struct {
	OnInit    func(nd *Node)
	OnDeliver func(nd *Node, d Delivery)
	OnTick    func(nd *Node)
}

var _ Program = Funcs{}

// Init implements Program.
func (f Funcs) Init(nd *Node) {
	if f.OnInit != nil {
		f.OnInit(nd)
	}
}

// Deliver implements Program.
func (f Funcs) Deliver(nd *Node, d Delivery) {
	if f.OnDeliver != nil {
		f.OnDeliver(nd, d)
	}
}

// Tick implements Program.
func (f Funcs) Tick(nd *Node) {
	if f.OnTick != nil {
		f.OnTick(nd)
	}
}
