package congest

import (
	"fmt"
	"testing"

	"congestmwc/internal/gen"
)

// streamRecorder serialises every observer event — including all optional
// extensions — with its full payload, so two engines' streams can be
// compared verbatim.
type streamRecorder struct {
	events []string
}

func (r *streamRecorder) add(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *streamRecorder) OnRound(round int) { r.add("round %d", round) }
func (r *streamRecorder) OnMessage(round, from, to int, m Msg) {
	r.add("msg r=%d %d->%d tag=%d words=%v", round, from, to, m.Tag, m.Words)
}
func (r *streamRecorder) OnRoundEnd(round int, rs RoundStats) {
	r.add("roundEnd r=%d %+v", round, rs)
}
func (r *streamRecorder) OnPhaseBegin(path string, round int) {
	r.add("phaseBegin %s r=%d", path, round)
}
func (r *streamRecorder) OnPhaseEnd(path string, round int) { r.add("phaseEnd %s r=%d", path, round) }
func (r *streamRecorder) OnRunStart(round int)              { r.add("runStart %d", round) }
func (r *streamRecorder) OnRunEnd(round int)                { r.add("runEnd %d", round) }

// floodFrom builds per-node programs flooding a 2-word token from root.
func floodFrom(n, root int) ([]Program, []bool) {
	heard := make([]bool, n)
	progs := make([]Program, n)
	for v := 0; v < n; v++ {
		v := v
		progs[v] = Funcs{
			OnInit: func(nd *Node) {
				if v == root {
					heard[v] = true
					for _, u := range nd.Neighbors() {
						nd.SendTag(u, 42, int64(v), 0)
					}
				}
			},
			OnDeliver: func(nd *Node, d Delivery) {
				if d.Msg.Tag != 42 || heard[v] {
					return
				}
				heard[v] = true
				for _, u := range nd.Neighbors() {
					if u != d.From {
						nd.SendTag(u, 42, int64(v), d.Msg.Words[1]+1)
					}
				}
			},
		}
	}
	return progs, heard
}

// TestEngineEventStreamEquivalence asserts the sequential and parallel
// engines emit the identical observer event stream — every event, in
// order, with identical payloads — on a seeded random graph, across two
// phased runs. Run with -race to also check that observer callbacks never
// fire from worker goroutines.
func TestEngineEventStreamEquivalence(t *testing.T) {
	g, err := (gen.Random{N: 40, P: 0.15, Seed: 7}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	capture := func(parallel bool) []string {
		net, err := NewNetwork(g, Options{Seed: 11, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		rec := &streamRecorder{}
		net.SetObserver(rec)
		for i, root := range []int{0, g.N() / 2} {
			net.BeginPhase(fmt.Sprintf("stage-%d", i))
			progs, heard := floodFrom(g.N(), root)
			if _, err := net.Run(progs, 0); err != nil {
				t.Fatal(err)
			}
			net.EndPhase()
			for v, h := range heard {
				if !h {
					t.Fatalf("parallel=%v: node %d never heard the flood", parallel, v)
				}
			}
		}
		return rec.events
	}
	seq := capture(false)
	par := capture(true)
	if len(seq) != len(par) {
		t.Fatalf("stream lengths differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("streams diverge at event %d:\n  sequential: %s\n  parallel:   %s",
				i, seq[i], par[i])
		}
	}
	if len(seq) == 0 {
		t.Fatal("no events recorded")
	}
}
