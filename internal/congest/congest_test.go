package congest

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"congestmwc/internal/gen"
	"congestmwc/internal/graph"
)

// floodProgram floods a token from node 0 and records the round at which
// each node first hears it (i.e. BFS depth in the communication graph).
type floodProgram struct {
	Base
	heardAt []int // shared slice; each node writes only its own entry
}

func (p *floodProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		p.heardAt[0] = 0
		for _, u := range nd.Neighbors() {
			nd.SendTag(u, 1)
		}
	}
}

func (p *floodProgram) Deliver(nd *Node, d Delivery) {
	if p.heardAt[nd.ID()] >= 0 {
		return
	}
	p.heardAt[nd.ID()] = nd.Round()
	for _, u := range nd.Neighbors() {
		if u != d.From {
			nd.SendTag(u, 1)
		}
	}
}

func newFlood(n int) *floodProgram {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &floodProgram{heardAt: h}
}

func progsFor(n int, p Program) []Program {
	out := make([]Program, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestFloodTakesDepthRounds(t *testing.T) {
	g := gen.Path(6)
	net, err := NewNetwork(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := newFlood(6)
	rounds, err := net.Run(progsFor(6, p), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if p.heardAt[v] != v {
			t.Errorf("node %d heard at round %d, want %d", v, p.heardAt[v], v)
		}
	}
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5 (path depth)", rounds)
	}
	if s := net.Stats(); s.Messages == 0 || s.Words < s.Messages {
		t.Errorf("stats look wrong: %+v", s)
	}
}

func TestDisconnectedRejected(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}}, graph.Options{})
	if _, err := NewNetwork(g, Options{}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("NewNetwork error = %v, want ErrDisconnected", err)
	}
}

func TestProgramCountMismatch(t *testing.T) {
	net, err := NewNetwork(gen.Path(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(progsFor(2, Base{}), 0); err == nil {
		t.Error("Run with wrong program count should fail")
	}
}

// fragProgram sends one large message from 0 to 1 and records delivery round.
type fragProgram struct {
	Base
	size        int
	deliveredAt *int
}

func (p *fragProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		words := make([]int64, p.size-1)
		nd.Send(1, Msg{Tag: 7, Words: words})
	}
}

func (p *fragProgram) Deliver(nd *Node, d Delivery) {
	if nd.ID() == 1 && d.Msg.Tag == 7 {
		*p.deliveredAt = nd.Round()
	}
}

func TestFragmentationChargesRounds(t *testing.T) {
	// Size-10 message over bandwidth-2 link: delivered at round ceil(10/2)=5.
	tests := []struct {
		size, bandwidth, wantRound int
	}{
		{size: 10, bandwidth: 2, wantRound: 5},
		{size: 2, bandwidth: 2, wantRound: 1},
		{size: 3, bandwidth: 2, wantRound: 2},
		{size: 7, bandwidth: 3, wantRound: 3},
		{size: 1, bandwidth: 1, wantRound: 1},
	}
	for _, tt := range tests {
		g := gen.Path(2)
		net, err := NewNetwork(g, Options{Bandwidth: tt.bandwidth})
		if err != nil {
			t.Fatal(err)
		}
		at := -1
		p := &fragProgram{size: tt.size, deliveredAt: &at}
		if _, err := net.Run(progsFor(2, p), 0); err != nil {
			t.Fatal(err)
		}
		if at != tt.wantRound {
			t.Errorf("size %d bw %d: delivered at round %d, want %d",
				tt.size, tt.bandwidth, at, tt.wantRound)
		}
	}
}

// pipelineProgram sends k unit messages from 0 to 1; FIFO pipelining should
// deliver the last at round ~k/B.
type pipelineProgram struct {
	Base
	k        int
	lastAt   *int
	received *int
}

func (p *pipelineProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		for i := 0; i < p.k; i++ {
			nd.SendTag(1, int64(i), int64(i))
		}
	}
}

func (p *pipelineProgram) Deliver(nd *Node, d Delivery) {
	if nd.ID() == 1 {
		*p.received++
		*p.lastAt = nd.Round()
	}
}

func TestPipelining(t *testing.T) {
	g := gen.Path(2)
	net, err := NewNetwork(g, Options{Bandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	last, recv := -1, 0
	p := &pipelineProgram{k: 20, lastAt: &last, received: &recv}
	if _, err := net.Run(progsFor(2, p), 0); err != nil {
		t.Fatal(err)
	}
	if recv != 20 {
		t.Fatalf("received %d messages, want 20", recv)
	}
	// 20 messages of size 2 over bandwidth 2 = 20 rounds.
	if last != 20 {
		t.Errorf("last delivery at round %d, want 20", last)
	}
}

func TestQueueLen(t *testing.T) {
	g := gen.Path(2)
	net, err := NewNetwork(g, Options{Bandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var seenLen int
	p := &queueLenProgram{seen: &seenLen}
	if _, err := net.Run(progsFor(2, p), 0); err != nil {
		t.Fatal(err)
	}
	if seenLen != 3 {
		t.Errorf("QueueLen after 3 sends = %d, want 3", seenLen)
	}
}

type queueLenProgram struct {
	Base
	seen *int
}

func (p *queueLenProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		nd.SendTag(1, 1)
		nd.SendTag(1, 2)
		nd.SendTag(1, 3)
		*p.seen = nd.QueueLen(1)
	}
}

// wakeProgram checks WakeAt fires at the requested round.
type wakeProgram struct {
	Base
	tickedAt *[]int
}

func (p *wakeProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		nd.WakeAt(3)
		nd.WakeAt(7)
		nd.WakeAt(7) // duplicate must not double-tick
	}
}

func (p *wakeProgram) Tick(nd *Node) {
	if nd.ID() == 0 {
		*p.tickedAt = append(*p.tickedAt, nd.Round())
	}
}

func TestWakeAt(t *testing.T) {
	net, err := NewNetwork(gen.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ticks []int
	p := &wakeProgram{tickedAt: &ticks}
	if _, err := net.Run(progsFor(2, p), 0); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 2 || ticks[0] != 3 || ticks[1] != 7 {
		t.Errorf("ticks = %v, want [3 7]", ticks)
	}
}

// chatterProgram keeps sending forever; used to trigger the budget error.
type chatterProgram struct{ Base }

func (chatterProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		nd.SendTag(1, 0)
	}
}

func (chatterProgram) Deliver(nd *Node, d Delivery) {
	for _, u := range nd.Neighbors() {
		nd.SendTag(u, d.Msg.Tag+1)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	net, err := NewNetwork(gen.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(progsFor(2, chatterProgram{}), 50); !errors.Is(err, ErrBudget) {
		t.Fatalf("Run error = %v, want ErrBudget", err)
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	net, err := NewNetwork(gen.Path(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on send to non-neighbor")
		}
	}()
	_, _ = net.Run(progsFor(3, badSender{}), 0)
}

type badSender struct{ Base }

func (badSender) Init(nd *Node) {
	if nd.ID() == 0 {
		nd.SendTag(2, 1) // 0 and 2 are not adjacent on the path
	}
}

func TestCutMetering(t *testing.T) {
	g := gen.Path(4)
	net, err := NewNetwork(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	side := []bool{false, false, true, true} // cut between 1 and 2
	net.MeterCut(side)
	p := newFlood(4)
	if _, err := net.Run(progsFor(4, p), 0); err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.CutWords == 0 {
		t.Error("flood must cross the metered cut")
	}
	if s.CutWords >= s.Words {
		t.Errorf("cut words %d should be a strict subset of total %d", s.CutWords, s.Words)
	}
}

func TestRoundsAccumulateAcrossRuns(t *testing.T) {
	net, err := NewNetwork(gen.Path(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(progsFor(6, newFlood(6)), 0); err != nil {
		t.Fatal(err)
	}
	r1 := net.Stats().Rounds
	if _, err := net.Run(progsFor(6, newFlood(6)), 0); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Rounds; got != 2*r1 {
		t.Errorf("accumulated rounds = %d, want %d", got, 2*r1)
	}
	if net.Round() != 2*r1 {
		t.Errorf("Round() = %d, want %d", net.Round(), 2*r1)
	}
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	g, err := (gen.Random{N: 60, P: 0.08, Seed: 5}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel bool) ([]int, Stats) {
		net, err := NewNetwork(g, Options{Seed: 11, Parallel: parallel, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		p := newFlood(g.N())
		if _, err := net.Run(progsFor(g.N(), p), 0); err != nil {
			t.Fatal(err)
		}
		return p.heardAt, net.Stats()
	}
	seqHeard, seqStats := run(false)
	parHeard, parStats := run(true)
	for v := range seqHeard {
		if seqHeard[v] != parHeard[v] {
			t.Errorf("node %d: seq heard %d, parallel heard %d", v, seqHeard[v], parHeard[v])
		}
	}
	if seqStats != parStats {
		t.Errorf("stats differ: seq %+v parallel %+v", seqStats, parStats)
	}
}

func TestChargeRounds(t *testing.T) {
	net, err := NewNetwork(gen.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	net.ChargeRounds(17)
	if net.Stats().Rounds != 17 || net.Round() != 17 {
		t.Errorf("ChargeRounds: stats %+v round %d", net.Stats(), net.Round())
	}
}

func TestMsgSize(t *testing.T) {
	if got := (Msg{Tag: 1}).Size(); got != 1 {
		t.Errorf("empty msg size = %d, want 1", got)
	}
	if got := (Msg{Tag: 1, Words: make([]int64, 4)}).Size(); got != 5 {
		t.Errorf("4-word msg size = %d, want 5", got)
	}
}

func TestDeterminismAcrossRunsSameSeed(t *testing.T) {
	g, err := (gen.Random{N: 30, P: 0.1, Seed: 9}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	var prev Stats
	for i := 0; i < 3; i++ {
		net, err := NewNetwork(g, Options{Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		p := newFlood(g.N())
		if _, err := net.Run(progsFor(g.N(), p), 0); err != nil {
			t.Fatal(err)
		}
		if i > 0 && net.Stats() != prev {
			t.Fatalf("run %d stats %+v differ from %+v", i, net.Stats(), prev)
		}
		prev = net.Stats()
	}
}

func TestObserverSeesTraffic(t *testing.T) {
	net, err := NewNetwork(gen.Path(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var counter CountingObserver
	net.SetObserver(&counter)
	p := newFlood(5)
	if _, err := net.Run(progsFor(5, p), 0); err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if counter.Messages != s.Messages {
		t.Errorf("observer saw %d messages, stats say %d", counter.Messages, s.Messages)
	}
	if counter.Rounds != s.Rounds {
		t.Errorf("observer saw %d rounds, stats say %d", counter.Rounds, s.Rounds)
	}
	if counter.PerTag[1] != s.Messages {
		t.Errorf("per-tag count %d, want %d", counter.PerTag[1], s.Messages)
	}
}

func TestTraceWriter(t *testing.T) {
	net, err := NewNetwork(gen.Path(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tw := &TraceWriter{W: &buf, MaxMessages: 2}
	net.SetObserver(tw)
	p := newFlood(4)
	if _, err := net.Run(progsFor(4, p), 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "r=1 0->1 tag=1 size=1") {
		t.Errorf("trace missing first delivery:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("MaxMessages=2 should cap output at 2 lines plus the suppression line:\n%s", out)
	}
	if tw.Suppressed() == 0 {
		t.Error("suppressed counter should be positive")
	}
	if !strings.Contains(out, fmt.Sprintf("... %d messages suppressed", tw.Suppressed())) {
		t.Errorf("run end should flush the suppression accounting:\n%s", out)
	}
	net.SetObserver(nil) // removal must not panic on next run
	if _, err := net.Run(progsFor(4, newFlood(4)), 0); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSingleWorker(t *testing.T) {
	g, err := (gen.Random{N: 30, P: 0.1, Seed: 2}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(g, Options{Seed: 9, Parallel: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := newFlood(g.N())
	if _, err := net.Run(progsFor(g.N(), p), 0); err != nil {
		t.Fatal(err)
	}
	for v := range p.heardAt {
		if p.heardAt[v] < 0 {
			t.Fatalf("node %d never heard the flood", v)
		}
	}
}

func TestIdleProgramsQuiesceImmediately(t *testing.T) {
	net, err := NewNetwork(gen.Path(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := net.Run(progsFor(5, Base{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Errorf("idle programs consumed %d rounds, want 0", rounds)
	}
}
