package congest

import "math"

// never is the round number reported by schedule queries when nothing is
// pending — later than any reachable round.
const never = math.MaxInt

// qmsg is one queued message in a link's FIFO: its tag plus the position of
// its payload in the link's words arena. Storing (offset, length) instead of
// a slice keeps the queue pointer-free — the garbage collector never scans
// link queues, and a drained link retains nothing.
type qmsg struct {
	tag int64
	off int32 // payload start in link.words
	n   int32 // payload length in words
}

// size returns the message size in words (tag + payload).
func (q qmsg) size() int { return 1 + int(q.n) }

// link is one directed FIFO channel of the communication graph. queue[head:]
// holds the undelivered messages; their payloads live contiguously in
// words[queue[head].off:]. credit is the bandwidth accumulated toward the
// head message's size (fragmentation: a size-s message completes once credit
// reaches s, i.e. after ceil(s/B) rounds on an otherwise idle link).
//
// Both queue and words are per-link arenas: they grow to the link's
// high-water backlog once and are then reused round after round, so a
// steady-state round enqueues and delivers without touching the heap.
// Delivery copies payloads out into the receiver's inbox arena, so the
// link's own arena has exactly one referent (the link) and can be reset or
// compacted whenever its delivered prefix allows.
type link struct {
	owner, to int32
	queue     []qmsg
	words     []int64
	head      int  // index of the first undelivered message in queue
	credit    int  // words of bandwidth accrued toward queue[head]
	enqueued  bool // tracked in transport.queued or a node's touched list
	cut       bool // crosses the metered cut
}

// reset returns a fully-drained link to its idle state, keeping the backing
// arrays of both arenas for reuse. Nothing needs clearing: neither arena
// holds pointers.
func (l *link) reset() {
	l.queue = l.queue[:0]
	l.words = l.words[:0]
	l.head = 0
	l.credit = 0
	l.enqueued = false
}

// maybeCompact shifts queue[head:] (and the corresponding payload suffix of
// the words arena) to the front once the delivered prefix dominates, so a
// long-lived queue doesn't grow its backing arrays without bound. Payloads
// of undelivered messages are contiguous at words[queue[head].off:] because
// enqueue and delivery are both FIFO.
func (l *link) maybeCompact() {
	if l.head <= 32 || 2*l.head < len(l.queue) {
		return
	}
	base := l.queue[l.head].off
	nw := copy(l.words, l.words[base:])
	l.words = l.words[:nw]
	nq := copy(l.queue, l.queue[l.head:])
	l.queue = l.queue[:nq]
	for i := range l.queue {
		l.queue[i].off -= base
	}
	l.head = 0
}

// transport owns the flat arena of directed links, indexed by link ID. IDs
// are assigned in ascending (owner, to) order — node v's links form the
// contiguous range [Network.linkOff[v], Network.linkOff[v+1]), parallel to
// its sorted neighbor list — so the pending set (queued) is a sorted []int32
// of link IDs and "canonical delivery order" is simply ascending ID order.
// nextDelivery is the earliest round at which any queued link can complete a
// message, computed from per-link credit and head-of-queue size; the
// scheduler uses it (together with the wake-up calendar) to jump over empty
// rounds.
type transport struct {
	bandwidth    int
	links        []link  // all directed links, ID == canonical (owner, to) rank
	queued       []int32 // IDs of links with pending traffic, sorted ascending
	nextDelivery int     // earliest completable delivery round; never if idle
	fresh        []int32 // scratch: this round's newly-touched link IDs

	// Per-round congestion figures, reset by transmit and reported through
	// RoundObserver.
	maxLink  int // most words delivered over one link this round
	maxQueue int // longest link backlog left after transmit
}

func newTransport(bandwidth int) transport {
	return transport{bandwidth: bandwidth, nextDelivery: never}
}

// pending reports whether any link has undelivered traffic.
func (tr *transport) pending() bool { return len(tr.queued) > 0 }

// transmit advances every queued link by elapsed rounds of bandwidth and
// places completed messages in destination inboxes, appending each receiving
// node to buf (with duplicates). elapsed > 1 settles a skipped gap: because
// nextDelivery is a min over the queued links, no link could have completed
// a message during the gap, so crediting B*elapsed in one step is identical
// to per-round accrual. Recomputes nextDelivery for the links that remain.
//
// Delivered payloads are copied into the receiving node's inWords arena and
// handed to its inbox as views of that arena. Copying at delivery is what
// makes the lifetime contract safe: the sending link's own arena may be reset
// and rewritten by the owner's handler in this very round (possibly on
// another worker goroutine), while the receiver's arena only grows until the
// receiver itself clears its inbox.
func (tr *transport) transmit(net *Network, elapsed int, buf []int) []int {
	tr.maxLink, tr.maxQueue = 0, 0
	if len(tr.queued) == 0 {
		tr.nextDelivery = never
		return buf
	}
	b := tr.bandwidth
	next := never
	remaining := tr.queued[:0]
	for _, id := range tr.queued {
		l := &tr.links[id]
		l.maybeCompact()
		l.credit += b * elapsed
		delivered := false
		linkWords := 0
		for l.head < len(l.queue) && l.queue[l.head].size() <= l.credit {
			q := l.queue[l.head]
			l.head++
			size := q.size()
			l.credit -= size
			dst := net.nodes[l.to]
			woff := len(dst.inWords)
			dst.inWords = append(dst.inWords, l.words[q.off:q.off+q.n]...)
			m := Msg{Tag: q.tag, Words: dst.inWords[woff:len(dst.inWords):len(dst.inWords)]}
			dst.inbox = append(dst.inbox, Delivery{From: int(l.owner), Msg: m})
			if net.msgObs != nil {
				net.msgObs.OnMessage(net.now, int(l.owner), int(l.to), m)
			}
			net.stats.Messages++
			net.stats.Words += size
			linkWords += size
			if l.cut {
				net.stats.CutWords += size
			}
			delivered = true
		}
		if linkWords > tr.maxLink {
			tr.maxLink = linkWords
		}
		if delivered {
			buf = append(buf, int(l.to))
		}
		if l.head == len(l.queue) {
			l.reset()
			continue
		}
		if qlen := len(l.queue) - l.head; qlen > tr.maxQueue {
			tr.maxQueue = qlen
		}
		need := l.queue[l.head].size() - l.credit
		if r := net.now + (need+b-1)/b; r < next {
			next = r
		}
		remaining = append(remaining, id)
	}
	tr.queued = remaining
	tr.nextDelivery = next
	return buf
}

// enqueue merges this round's newly-touched link IDs (ascending, disjoint
// from queued since their enqueued flag was just set) into the sorted queued
// set — a backward in-place merge, O(new + queued) instead of re-sorting —
// and pulls nextDelivery forward for each new head-of-queue.
func (tr *transport) enqueue(now int, fresh []int32) {
	if len(fresh) == 0 {
		return
	}
	b := tr.bandwidth
	for _, id := range fresh {
		l := &tr.links[id]
		need := l.queue[l.head].size() - l.credit
		if r := now + (need+b-1)/b; r < tr.nextDelivery {
			tr.nextDelivery = r
		}
	}
	q := append(tr.queued, fresh...)
	// Backward merge, reading the new elements from fresh (a separate
	// backing array) so overwriting q's tail is safe.
	i, j := len(tr.queued)-1, len(fresh)-1
	for k := len(q) - 1; j >= 0; k-- {
		if i >= 0 && tr.queued[i] > fresh[j] {
			q[k] = tr.queued[i]
			i--
		} else {
			q[k] = fresh[j]
			j--
		}
	}
	tr.queued = q
}
