package congest

import "math"

// never is the round number reported by schedule queries when nothing is
// pending — later than any reachable round.
const never = math.MaxInt

// link is one directed FIFO channel of the communication graph. queue[head:]
// holds the undelivered messages; credit is the bandwidth accumulated toward
// the head message's size (fragmentation: a size-s message completes once
// credit reaches s, i.e. after ceil(s/B) rounds on an otherwise idle link).
type link struct {
	owner, to int
	queue     []Msg
	head      int  // index of the first undelivered message in queue
	credit    int  // words of bandwidth accrued toward queue[head]
	enqueued  bool // tracked in transport.queued or a node's touched list
	cut       bool // crosses the metered cut
}

// reset returns a fully-drained link to its idle state, keeping the queue's
// backing array for reuse but dropping message payload references.
func (l *link) reset() {
	for i := range l.queue {
		l.queue[i] = Msg{}
	}
	l.queue = l.queue[:0]
	l.head = 0
	l.credit = 0
	l.enqueued = false
}

// maybeCompact shifts queue[head:] to the front once the delivered prefix
// dominates the slice, so a long-lived queue doesn't pin delivered messages
// or grow its backing array without bound.
func (l *link) maybeCompact() {
	if l.head > 32 && 2*l.head >= len(l.queue) {
		n := copy(l.queue, l.queue[l.head:])
		for i := n; i < len(l.queue); i++ {
			l.queue[i] = Msg{}
		}
		l.queue = l.queue[:n]
		l.head = 0
	}
}

// transport owns the set of links with pending traffic, kept sorted by
// (owner, to) so deliveries happen in canonical order, and maintains
// nextDelivery — the earliest round at which any queued link can complete a
// message, computed from per-link credit and head-of-queue size. The
// scheduler uses nextDelivery (together with the wake-up calendar) to jump
// over empty rounds.
type transport struct {
	bandwidth    int
	queued       []*link // links with pending traffic, sorted by (owner, to)
	nextDelivery int     // earliest completable delivery round; never if idle
	fresh        []*link // scratch: this round's newly-touched links

	// Per-round congestion figures, reset by transmit and reported through
	// RoundObserver.
	maxLink  int // most words delivered over one link this round
	maxQueue int // longest link backlog left after transmit
}

func newTransport(bandwidth int) transport {
	return transport{bandwidth: bandwidth, nextDelivery: never}
}

// pending reports whether any link has undelivered traffic.
func (tr *transport) pending() bool { return len(tr.queued) > 0 }

// transmit advances every queued link by elapsed rounds of bandwidth and
// places completed messages in destination inboxes, appending each receiving
// node to buf (with duplicates). elapsed > 1 settles a skipped gap: because
// nextDelivery is a min over the queued links, no link could have completed
// a message during the gap, so crediting B*elapsed in one step is identical
// to per-round accrual. Recomputes nextDelivery for the links that remain.
func (tr *transport) transmit(net *Network, elapsed int, buf []int) []int {
	tr.maxLink, tr.maxQueue = 0, 0
	if len(tr.queued) == 0 {
		tr.nextDelivery = never
		return buf
	}
	b := tr.bandwidth
	next := never
	remaining := tr.queued[:0]
	for _, l := range tr.queued {
		l.credit += b * elapsed
		delivered := false
		linkWords := 0
		for l.head < len(l.queue) && l.queue[l.head].Size() <= l.credit {
			m := l.queue[l.head]
			l.queue[l.head] = Msg{}
			l.head++
			l.credit -= m.Size()
			dst := net.nodes[l.to]
			dst.inbox = append(dst.inbox, Delivery{From: l.owner, Msg: m})
			if net.msgObs != nil {
				net.msgObs.OnMessage(net.now, l.owner, l.to, m)
			}
			net.stats.Messages++
			net.stats.Words += m.Size()
			linkWords += m.Size()
			if l.cut {
				net.stats.CutWords += m.Size()
			}
			delivered = true
		}
		if linkWords > tr.maxLink {
			tr.maxLink = linkWords
		}
		if delivered {
			buf = append(buf, l.to)
		}
		if l.head == len(l.queue) {
			l.reset()
			continue
		}
		if qlen := len(l.queue) - l.head; qlen > tr.maxQueue {
			tr.maxQueue = qlen
		}
		l.maybeCompact()
		need := l.queue[l.head].Size() - l.credit
		if r := net.now + (need+b-1)/b; r < next {
			next = r
		}
		remaining = append(remaining, l)
	}
	// Clear the dropped tail so drained links aren't pinned by the
	// reused backing array.
	for i := len(remaining); i < len(tr.queued); i++ {
		tr.queued[i] = nil
	}
	tr.queued = remaining
	tr.nextDelivery = next
	return buf
}

// enqueue merges this round's newly-touched links (sorted by (owner, to),
// disjoint from queued since their enqueued flag was just set) into the
// sorted queued set — a backward in-place merge, O(new + queued) instead of
// re-sorting — and pulls nextDelivery forward for each new head-of-queue.
func (tr *transport) enqueue(now int, fresh []*link) {
	if len(fresh) == 0 {
		return
	}
	b := tr.bandwidth
	for _, l := range fresh {
		need := l.queue[l.head].Size() - l.credit
		if r := now + (need+b-1)/b; r < tr.nextDelivery {
			tr.nextDelivery = r
		}
	}
	q := append(tr.queued, fresh...)
	// Backward merge, reading the new elements from fresh (a separate
	// backing array) so overwriting q's tail is safe.
	i, j := len(tr.queued)-1, len(fresh)-1
	for k := len(q) - 1; j >= 0; k-- {
		if i >= 0 && linkAfter(tr.queued[i], fresh[j]) {
			q[k] = tr.queued[i]
			i--
		} else {
			q[k] = fresh[j]
			j--
		}
	}
	tr.queued = q
}

// linkAfter reports whether a orders after b in the canonical (owner, to)
// delivery order.
func linkAfter(a, b *link) bool {
	if a.owner != b.owner {
		return a.owner > b.owner
	}
	return a.to > b.to
}
