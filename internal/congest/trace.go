package congest

import (
	"fmt"
	"io"
)

// TraceWriter is an Observer that writes a compact text log, for debugging
// distributed algorithms:
//
//	r=12 3->7 tag=202 size=6 words=[5 2 1 5 0]
//
// size is the message size in words (tag + payload), so fragmentation cost
// — a size-s message occupies its link for ceil(s/B) rounds — is visible
// directly in the trace.
//
// MaxMessages bounds the log volume (0 = unlimited); further messages are
// counted but not printed. At the end of every Run (the writer implements
// RunObserver) a trailing
//
//	... 17 messages suppressed
//
// line accounts for the drop; Flush writes it on demand for callers that
// bypass Run-end notifications.
type TraceWriter struct {
	W           io.Writer
	MaxMessages int

	printed    int
	suppressed int
	reported   int // suppressed messages already accounted for by Flush
}

var (
	_ Observer    = (*TraceWriter)(nil)
	_ RunObserver = (*TraceWriter)(nil)
)

// OnRound implements Observer.
func (t *TraceWriter) OnRound(int) {}

// OnMessage implements Observer.
func (t *TraceWriter) OnMessage(round, from, to int, m Msg) {
	if t.MaxMessages > 0 && t.printed >= t.MaxMessages {
		t.suppressed++
		return
	}
	t.printed++
	fmt.Fprintf(t.W, "r=%d %d->%d tag=%d size=%d words=%v\n", round, from, to, m.Tag, m.Size(), m.Words)
}

// OnRunStart implements RunObserver.
func (t *TraceWriter) OnRunStart(int) {}

// OnRunEnd implements RunObserver by flushing the suppression accounting.
func (t *TraceWriter) OnRunEnd(int) { t.Flush() }

// Flush writes a "... N messages suppressed" line covering the messages
// suppressed since the previous Flush (none is written when nothing new
// was suppressed).
func (t *TraceWriter) Flush() {
	if d := t.suppressed - t.reported; d > 0 {
		fmt.Fprintf(t.W, "... %d messages suppressed\n", d)
		t.reported = t.suppressed
	}
}

// Suppressed returns the number of messages dropped by MaxMessages.
func (t *TraceWriter) Suppressed() int { return t.suppressed }

// CountingObserver tallies events without recording them; useful in tests
// and for cheap instrumentation. Rounds counts *executed* rounds (OnRound
// callbacks) — under the event-driven scheduler this excludes skipped empty
// rounds, so it can be less than Stats.Rounds; use obs.Collector for
// gap-aware round totals.
type CountingObserver struct {
	Rounds   int
	Messages int
	// PerTag counts deliveries by message tag.
	PerTag map[int64]int
}

var _ Observer = (*CountingObserver)(nil)

// OnRound implements Observer.
func (c *CountingObserver) OnRound(int) { c.Rounds++ }

// OnMessage implements Observer.
func (c *CountingObserver) OnMessage(_, _, _ int, m Msg) {
	c.Messages++
	if c.PerTag == nil {
		c.PerTag = make(map[int64]int)
	}
	c.PerTag[m.Tag]++
}
