package congest

import (
	"fmt"
	"io"
)

// Observer receives simulation events. Implementations must be fast; the
// observer runs synchronously inside the round loop (message events are
// emitted from the single-threaded transmit phase, so no locking is needed
// even under the parallel engine).
type Observer interface {
	// OnRound fires at the start of every round, before deliveries.
	OnRound(round int)
	// OnMessage fires for every delivered message.
	OnMessage(round, from, to int, m Msg)
}

// SetObserver installs an observer (nil removes it).
func (net *Network) SetObserver(obs Observer) { net.obs = obs }

// TraceWriter is an Observer that writes a compact text log, for debugging
// distributed algorithms:
//
//	r=12 3->7 tag=202 words=[5 2 1 5 0]
//
// MaxMessages bounds the log volume (0 = unlimited); further messages are
// counted but not printed.
type TraceWriter struct {
	W           io.Writer
	MaxMessages int

	printed    int
	suppressed int
}

var _ Observer = (*TraceWriter)(nil)

// OnRound implements Observer.
func (t *TraceWriter) OnRound(int) {}

// OnMessage implements Observer.
func (t *TraceWriter) OnMessage(round, from, to int, m Msg) {
	if t.MaxMessages > 0 && t.printed >= t.MaxMessages {
		t.suppressed++
		return
	}
	t.printed++
	fmt.Fprintf(t.W, "r=%d %d->%d tag=%d words=%v\n", round, from, to, m.Tag, m.Words)
}

// Suppressed returns the number of messages dropped by MaxMessages.
func (t *TraceWriter) Suppressed() int { return t.suppressed }

// CountingObserver tallies events without recording them; useful in tests
// and for cheap instrumentation.
type CountingObserver struct {
	Rounds   int
	Messages int
	// PerTag counts deliveries by message tag.
	PerTag map[int64]int
}

var _ Observer = (*CountingObserver)(nil)

// OnRound implements Observer.
func (c *CountingObserver) OnRound(int) { c.Rounds++ }

// OnMessage implements Observer.
func (c *CountingObserver) OnMessage(_, _, _ int, m Msg) {
	c.Messages++
	if c.PerTag == nil {
		c.PerTag = make(map[int64]int)
	}
	c.PerTag[m.Tag]++
}
