package congest

import "sync"

// parEngine executes node handlers on worker goroutines with a barrier per
// round. Handlers mutate only node-local state (their own program state,
// PRNG and outgoing link queues), so chunking the active set across workers
// is safe and the observable behaviour — delivery order, Stats, round
// counts — is identical to the sequential engine.
//
// The transport is sharded per worker: worker w drains its nodes' touched
// links and wake-ups into net.scratch[w] as it executes them, so the
// collection that used to be a single-threaded O(active) pass after the
// barrier now happens inside the parallel section. afterHandlers only
// concatenates the per-worker outboxes — chunks partition the ascending
// active list, so worker order is canonical order and no re-sorting or
// locking is needed.
type parEngine struct {
	workers int
}

func (e *parEngine) runHandlers(net *Network, ids []int, init bool) {
	if len(ids) < 2 {
		for _, v := range ids {
			net.handleNode(v, init, &net.scratch[0])
		}
		return
	}
	workers := e.workers
	if workers > len(ids) {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []int, sc *roundScratch) {
			defer wg.Done()
			for i, v := range part {
				if i%abortStride == 0 && net.canceled() {
					// Bail mid-round on cancellation; the run loop returns
					// ErrCanceled at the round boundary. The barrier below
					// still waits for every worker, so no goroutine leaks.
					return
				}
				net.handleNode(v, init, sc)
			}
		}(ids[lo:hi], &net.scratch[w])
	}
	wg.Wait()
}
