package congest

import "sync"

// parEngine executes node handlers on worker goroutines with a barrier per
// round. Handlers mutate only node-local state (their own program state,
// PRNG and outgoing link queues), so chunking the active set across workers
// is safe and the observable behaviour — delivery order, Stats, round
// counts — is identical to the sequential engine.
type parEngine struct {
	workers int
}

func (e *parEngine) runHandlers(net *Network, ids []int, init bool) {
	if len(ids) < 2 {
		for _, v := range ids {
			net.handleNode(v, init)
		}
		return
	}
	workers := e.workers
	if workers > len(ids) {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			for i, v := range part {
				if i%abortStride == 0 && net.canceled() {
					// Bail mid-round on cancellation; the run loop returns
					// ErrCanceled at the round boundary. The barrier below
					// still waits for every worker, so no goroutine leaks.
					return
				}
				net.handleNode(v, init)
			}
		}(ids[lo:hi])
	}
	wg.Wait()
}
