package congest

// abortStride is how many node handlers an engine executes between abort
// checks. Handlers are typically microseconds, so a stride of 64 keeps the
// check off the hot path while still stopping a very wide round promptly
// once the network's context is canceled.
const abortStride = 64

// seqEngine runs every handler inline on the calling goroutine — the
// deterministic reference engine. It drains into the single scratch slot.
type seqEngine struct{}

func (seqEngine) runHandlers(net *Network, ids []int, init bool) {
	sc := &net.scratch[0]
	for i, v := range ids {
		if i%abortStride == 0 && net.canceled() {
			// Bail mid-round: the run loop observes the same signal at the
			// round boundary and returns ErrCanceled, so the half-executed
			// round is never resumed.
			return
		}
		net.handleNode(v, init, sc)
	}
}
