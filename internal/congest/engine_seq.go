package congest

// seqEngine runs every handler inline on the calling goroutine — the
// deterministic reference engine.
type seqEngine struct{}

func (seqEngine) runHandlers(net *Network, ids []int, init bool) {
	for _, v := range ids {
		net.handleNode(v, init)
	}
}
