package congest

// calendar is the round scheduler's wake-up side: a bucket queue mapping
// future rounds to the nodes that asked to be woken then (Node.WakeAt),
// with a hand-rolled min-heap over the distinct pending rounds. Together
// with transport.nextDelivery it tells the run loop the next round in which
// anything can happen, so empty rounds are skipped instead of iterated.
//
// The dominant scheduling pattern is a WakeNext storm: every busy node asks
// for the immediately following round, so one round accumulates hundreds of
// entries. The most recently opened bucket is therefore kept out of the map
// (hotRound/hot): repeat wake-ups for it are a plain append instead of a
// map-hash-and-store, which is the difference between the calendar being
// invisible and being ~10% of a message-bound run's profile.
type calendar struct {
	rounds   []int         // min-heap of distinct pending wake-up rounds
	nodes    map[int][]int // round -> nodes to wake (may contain duplicates)
	free     [][]int       // recycled buckets, to avoid per-round allocation
	hotRound int           // bucket kept out of the map; -1 when none
	hot      []int
}

func newCalendar() calendar {
	return calendar{nodes: make(map[int][]int), hotRound: -1}
}

// empty reports whether no wake-ups are pending.
func (c *calendar) empty() bool { return len(c.rounds) == 0 }

// next returns the earliest pending wake-up round, or never when empty.
func (c *calendar) next() int {
	if len(c.rounds) == 0 {
		return never
	}
	return c.rounds[0]
}

// schedule records that node v wants a wake-up at the given round.
func (c *calendar) schedule(round, v int) {
	if round == c.hotRound {
		c.hot = append(c.hot, v)
		return
	}
	if b, ok := c.nodes[round]; ok {
		c.nodes[round] = append(b, v)
		return
	}
	// First wake-up for a new round: it becomes the hot bucket, demoting the
	// previous one into the map. A round is in the heap iff it is in the map
	// or is the hot round, so membership stays consistent.
	c.push(round)
	c.flushHot()
	c.hotRound = round
	c.hot = c.takeFree()
	c.hot = append(c.hot, v)
}

// flushHot demotes the hot bucket into the map. By construction the map has
// no entry for hotRound (a round becomes hot only when absent, and stays the
// append target while hot), so this is a plain store.
func (c *calendar) flushHot() {
	if c.hotRound >= 0 {
		c.nodes[c.hotRound] = c.hot
		c.hotRound = -1
		c.hot = nil
	}
}

func (c *calendar) takeFree() []int {
	if n := len(c.free); n > 0 {
		b := c.free[n-1]
		c.free = c.free[:n-1]
		return b
	}
	return nil
}

// take removes and returns the bucket for the given round, or nil if no
// wake-up is pending for exactly that round. The caller hands the bucket
// back via recycle once consumed.
func (c *calendar) take(round int) []int {
	if len(c.rounds) == 0 || c.rounds[0] != round {
		return nil
	}
	c.popMin()
	if c.hotRound == round {
		b := c.hot
		c.hotRound = -1
		c.hot = nil
		return b
	}
	b := c.nodes[round]
	delete(c.nodes, round)
	return b
}

// recycle returns a consumed bucket to the freelist.
func (c *calendar) recycle(b []int) {
	if cap(b) > 0 && len(c.free) < 64 {
		c.free = append(c.free, b[:0])
	}
}

func (c *calendar) push(r int) {
	c.rounds = append(c.rounds, r)
	i := len(c.rounds) - 1
	for i > 0 {
		p := (i - 1) / 2
		if c.rounds[p] <= c.rounds[i] {
			break
		}
		c.rounds[p], c.rounds[i] = c.rounds[i], c.rounds[p]
		i = p
	}
}

func (c *calendar) popMin() {
	n := len(c.rounds) - 1
	c.rounds[0] = c.rounds[n]
	c.rounds = c.rounds[:n]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < n && c.rounds[l] < c.rounds[s] {
			s = l
		}
		if r < n && c.rounds[r] < c.rounds[s] {
			s = r
		}
		if s == i {
			return
		}
		c.rounds[i], c.rounds[s] = c.rounds[s], c.rounds[i]
		i = s
	}
}
