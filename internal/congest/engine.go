package congest

import "fmt"

// engine is the handler-execution strategy: how one round's Deliver/Tick
// (or Init) handlers are invoked across the active nodes. Implementations
// must preserve the invariant that handlers mutate only node-local state
// (their own nodeState and their own outgoing links), and must drain each
// node's per-round scratch (wake-up requests, touched links) into a
// per-worker roundScratch as they go — sharded collection, merged by
// afterHandlers at the round barrier. Everything else about a round —
// transmission, wake-up merging, observer callbacks — is engine-independent
// and lives in the run loop below, which is why both engines produce
// bit-identical event streams.
type engine interface {
	runHandlers(net *Network, ids []int, init bool)
}

// wakeReq is one drained wake-up request: node wants a Tick at round.
type wakeReq struct {
	round, node int
}

// roundScratch is one worker's outbox for a round: the link IDs its nodes
// first wrote to (in ascending ID order — each node's batch is sorted and
// node IDs ascend within a worker's chunk) and their wake-up requests.
// Workers own disjoint scratches, so handler execution collects this state
// without any lock; afterHandlers concatenates the scratches in worker
// order, which preserves the global canonical order because worker chunks
// partition the ascending active list.
type roundScratch struct {
	touched []int32
	wakes   []wakeReq
}

// handleNode invokes one node's handler(s) for the current round and drains
// the node's scratch into sc. Called from both engines; touches only the
// node's own state and the caller's scratch.
func (net *Network) handleNode(v int, init bool, sc *roundScratch) {
	st := net.nodes[v]
	nd := &st.node
	if init {
		st.program.Init(nd)
	} else {
		for _, d := range st.inbox {
			st.program.Deliver(nd, d)
		}
		st.program.Tick(nd)
		st.inbox = st.inbox[:0]
		st.inWords = st.inWords[:0]
	}
	if len(st.wakes) > 0 {
		for _, r := range st.wakes {
			sc.wakes = append(sc.wakes, wakeReq{round: r, node: v})
		}
		st.wakes = st.wakes[:0]
	}
	if len(st.touched) > 0 {
		insertionSortInt32(st.touched)
		sc.touched = append(sc.touched, st.touched...)
		st.touched = st.touched[:0]
	}
}

// Run executes one Program per node until quiescence: no queued link
// traffic and no pending wake-ups. budget caps the number of additional
// rounds; budget <= 0 selects a generous default. Returns the number of
// rounds this run consumed.
//
// The loop is event-driven: each iteration asks the scheduler for the next
// round in which anything can happen — the minimum of the transport's
// next-delivery round and the calendar's next wake-up — and jumps the clock
// straight there, charging the skipped gap to Stats.Rounds in one step.
// Options.Stepwise pins the next round to now+1, iterating every round
// one by one; both modes are bit-identical in results, Stats and round
// counts (see sched_test.go).
func (net *Network) Run(progs []Program, budget int) (int, error) {
	n := net.g.N()
	if len(progs) != n {
		return 0, fmt.Errorf("congest: %d programs for %d nodes", len(progs), n)
	}
	if budget <= 0 {
		budget = 1000*n + 1_000_000
	}
	start := net.now
	if net.runObs != nil {
		net.runObs.OnRunStart(net.now)
	}
	for v, st := range net.nodes {
		st.program = progs[v]
		st.inbox = st.inbox[:0]
		st.inWords = st.inWords[:0]
	}
	if net.canceled() {
		if net.runObs != nil {
			net.runObs.OnRunEnd(net.now)
		}
		return 0, net.cancelErr(start)
	}
	// Init phase: local computation before round 1 of this run; sends made
	// here enter the link queues and are delivered from the next round on.
	net.eng.runHandlers(net, net.all, true)
	net.afterHandlers()
	// A cancellation landing during the Init phase makes the engine bail
	// mid-batch; if the partially executed init left no pending traffic or
	// wake-ups, the loop below never runs, so report the cancellation here
	// rather than returning nil over a partially initialized network.
	if net.canceled() {
		if net.runObs != nil {
			net.runObs.OnRunEnd(net.now)
		}
		return net.now - start, net.cancelErr(start)
	}

	for net.tr.pending() || !net.cal.empty() {
		// Abort check at the round boundary: a cancellation that lands while
		// a round executes is observed here before the next round starts, so
		// a run stops within one executed round of its context being done.
		// Stats charge only executed rounds — the gap the scheduler would
		// have skipped to reach the next event is never added.
		if net.canceled() {
			if net.runObs != nil {
				net.runObs.OnRunEnd(net.now)
			}
			return net.now - start, net.cancelErr(start)
		}
		next := net.cal.next()
		if net.tr.pending() && net.tr.nextDelivery < next {
			next = net.tr.nextDelivery
		}
		if net.opts.Stepwise || next <= net.now {
			// Stepwise debug mode; or a stale past wake-up left behind by a
			// budget-exhausted run — degrade to one-round steps as the
			// stepwise loop would.
			next = net.now + 1
		}
		if next-start > budget {
			if net.now-start < budget {
				// Consume the remaining budget as one empty round so the
				// rounds charged equal the budget exactly, as stepwise
				// iteration would have.
				net.runRound(start + budget)
			}
			if net.runObs != nil {
				net.runObs.OnRunEnd(net.now)
			}
			return net.now - start, fmt.Errorf("%w (%d rounds)", ErrBudget, budget)
		}
		net.runRound(next)
	}
	for _, st := range net.nodes {
		st.program = nil
	}
	if net.runObs != nil {
		net.runObs.OnRunEnd(net.now)
	}
	return net.now - start, nil
}

// cancelErr builds the error for a canceled run, wrapping both ErrCanceled
// and the context's own cause so callers can distinguish explicit
// cancellation from a deadline.
func (net *Network) cancelErr(start int) error {
	return fmt.Errorf("%w after %d rounds: %w", ErrCanceled, net.now-start, net.ctx.Err())
}

// runRound executes the single round `round`, first settling the gap of
// skipped empty rounds since the previous executed one: the gap is charged
// to Stats.Rounds, queued links accrue its bandwidth, and observers see it
// as RoundStats.Gap.
func (net *Network) runRound(round int) {
	gap := round - net.now - 1
	net.now = round
	net.stats.Rounds += gap + 1
	if net.obs != nil {
		net.obs.OnRound(round)
	}
	before := net.stats
	buf := net.tr.transmit(net, gap+1, net.activeBuf[:0])
	if wk := net.cal.take(round); wk != nil {
		buf = append(buf, wk...)
		net.cal.recycle(wk)
	}
	// Dedup receivers/woken nodes with a per-node epoch stamp before sorting:
	// buf holds one entry per delivering link plus the wake bucket, so nodes
	// repeat up to their in-degree and sorting the raw list wastes most of
	// its compares on duplicates.
	net.epochN++
	active := buf[:0] // in-place: the write index never passes the read index
	for _, v := range buf {
		if net.epoch[v] != net.epochN {
			net.epoch[v] = net.epochN
			active = append(active, v)
		}
	}
	sortInts(active)
	net.activeBuf = buf
	net.eng.runHandlers(net, active, false)
	net.afterHandlers()
	net.stats.Activations += len(active)
	if net.roundObs != nil {
		net.roundObs.OnRoundEnd(round, RoundStats{
			Messages:     net.stats.Messages - before.Messages,
			Words:        net.stats.Words - before.Words,
			CutWords:     net.stats.CutWords - before.CutWords,
			Active:       len(active),
			MaxLinkWords: net.tr.maxLink,
			MaxQueueLen:  net.tr.maxQueue,
			Gap:          gap,
		})
	}
}

// afterHandlers merges the per-worker scratches filled during handler
// execution: wake-up requests go to the calendar, touched link IDs to the
// transport's sorted pending set. Worker chunks partition the ascending
// active list and each worker's touched list is already sorted, so
// concatenating scratches in worker order yields the canonical ascending
// link-ID order and the transport merge stays O(new + queued).
func (net *Network) afterHandlers() {
	fresh := net.tr.fresh[:0]
	for w := range net.scratch {
		sc := &net.scratch[w]
		if len(sc.touched) > 0 {
			fresh = append(fresh, sc.touched...)
			sc.touched = sc.touched[:0]
		}
		if len(sc.wakes) > 0 {
			for _, wr := range sc.wakes {
				net.cal.schedule(wr.round, wr.node)
			}
			sc.wakes = sc.wakes[:0]
		}
	}
	net.tr.enqueue(net.now, fresh)
	net.tr.fresh = fresh[:0]
}

// insertionSortInt32 sorts a node's touched link IDs. The lists are tiny
// (bounded by the node's degree, typically a handful), where insertion sort
// beats a generic sort without allocating.
func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}
