package congest

import "fmt"

// engine is the handler-execution strategy: how one round's Deliver/Tick
// (or Init) handlers are invoked across the active nodes. Implementations
// must preserve the invariant that handlers mutate only node-local state;
// everything else about a round — transmission, wake-up merging, observer
// callbacks — is engine-independent and lives in the run loop below, which
// is why both engines produce bit-identical event streams.
type engine interface {
	runHandlers(net *Network, ids []int, init bool)
}

// handleNode invokes one node's handler(s) for the current round. Called
// from both engines; touches only the node's own state.
func (net *Network) handleNode(v int, init bool) {
	st := net.nodes[v]
	nd := &Node{net: net, id: v, st: st}
	if init {
		st.program.Init(nd)
		return
	}
	for _, d := range st.inbox {
		st.program.Deliver(nd, d)
	}
	st.program.Tick(nd)
	st.inbox = st.inbox[:0]
}

// Run executes one Program per node until quiescence: no queued link
// traffic and no pending wake-ups. budget caps the number of additional
// rounds; budget <= 0 selects a generous default. Returns the number of
// rounds this run consumed.
//
// The loop is event-driven: each iteration asks the scheduler for the next
// round in which anything can happen — the minimum of the transport's
// next-delivery round and the calendar's next wake-up — and jumps the clock
// straight there, charging the skipped gap to Stats.Rounds in one step.
// Options.Stepwise pins the next round to now+1, iterating every round
// one by one; both modes are bit-identical in results, Stats and round
// counts (see sched_test.go).
func (net *Network) Run(progs []Program, budget int) (int, error) {
	n := net.g.N()
	if len(progs) != n {
		return 0, fmt.Errorf("congest: %d programs for %d nodes", len(progs), n)
	}
	if budget <= 0 {
		budget = 1000*n + 1_000_000
	}
	start := net.now
	if net.runObs != nil {
		net.runObs.OnRunStart(net.now)
	}
	for v, st := range net.nodes {
		st.program = progs[v]
		st.inbox = st.inbox[:0]
	}
	if net.canceled() {
		if net.runObs != nil {
			net.runObs.OnRunEnd(net.now)
		}
		return 0, net.cancelErr(start)
	}
	// Init phase: local computation before round 1 of this run; sends made
	// here enter the link queues and are delivered from the next round on.
	net.eng.runHandlers(net, net.all, true)
	net.afterHandlers(net.all)
	// A cancellation landing during the Init phase makes the engine bail
	// mid-batch; if the partially executed init left no pending traffic or
	// wake-ups, the loop below never runs, so report the cancellation here
	// rather than returning nil over a partially initialized network.
	if net.canceled() {
		if net.runObs != nil {
			net.runObs.OnRunEnd(net.now)
		}
		return net.now - start, net.cancelErr(start)
	}

	for net.tr.pending() || !net.cal.empty() {
		// Abort check at the round boundary: a cancellation that lands while
		// a round executes is observed here before the next round starts, so
		// a run stops within one executed round of its context being done.
		// Stats charge only executed rounds — the gap the scheduler would
		// have skipped to reach the next event is never added.
		if net.canceled() {
			if net.runObs != nil {
				net.runObs.OnRunEnd(net.now)
			}
			return net.now - start, net.cancelErr(start)
		}
		next := net.cal.next()
		if net.tr.pending() && net.tr.nextDelivery < next {
			next = net.tr.nextDelivery
		}
		if net.opts.Stepwise || next <= net.now {
			// Stepwise debug mode; or a stale past wake-up left behind by a
			// budget-exhausted run — degrade to one-round steps as the
			// stepwise loop would.
			next = net.now + 1
		}
		if next-start > budget {
			if net.now-start < budget {
				// Consume the remaining budget as one empty round so the
				// rounds charged equal the budget exactly, as stepwise
				// iteration would have.
				net.runRound(start + budget)
			}
			if net.runObs != nil {
				net.runObs.OnRunEnd(net.now)
			}
			return net.now - start, fmt.Errorf("%w (%d rounds)", ErrBudget, budget)
		}
		net.runRound(next)
	}
	for _, st := range net.nodes {
		st.program = nil
	}
	if net.runObs != nil {
		net.runObs.OnRunEnd(net.now)
	}
	return net.now - start, nil
}

// cancelErr builds the error for a canceled run, wrapping both ErrCanceled
// and the context's own cause so callers can distinguish explicit
// cancellation from a deadline.
func (net *Network) cancelErr(start int) error {
	return fmt.Errorf("%w after %d rounds: %w", ErrCanceled, net.now-start, net.ctx.Err())
}

// runRound executes the single round `round`, first settling the gap of
// skipped empty rounds since the previous executed one: the gap is charged
// to Stats.Rounds, queued links accrue its bandwidth, and observers see it
// as RoundStats.Gap.
func (net *Network) runRound(round int) {
	gap := round - net.now - 1
	net.now = round
	net.stats.Rounds += gap + 1
	if net.obs != nil {
		net.obs.OnRound(round)
	}
	before := net.stats
	buf := net.tr.transmit(net, gap+1, net.activeBuf[:0])
	if wk := net.cal.take(round); wk != nil {
		buf = append(buf, wk...)
		net.cal.recycle(wk)
	}
	active := sortedUnique(buf)
	net.activeBuf = buf
	net.eng.runHandlers(net, active, false)
	net.afterHandlers(active)
	net.stats.Activations += len(active)
	if net.roundObs != nil {
		net.roundObs.OnRoundEnd(round, RoundStats{
			Messages:     net.stats.Messages - before.Messages,
			Words:        net.stats.Words - before.Words,
			CutWords:     net.stats.CutWords - before.CutWords,
			Active:       len(active),
			MaxLinkWords: net.tr.maxLink,
			MaxQueueLen:  net.tr.maxQueue,
			Gap:          gap,
		})
	}
}

// afterHandlers merges per-node wake-up requests into the calendar and
// newly-touched links into the transport's sorted queued set
// (single-threaded). ids is sorted ascending and each node's touched list
// is insertion-sorted by destination, so the concatenation is already in
// canonical (owner, to) order and merges in O(new + queued).
func (net *Network) afterHandlers(ids []int) {
	fresh := net.tr.fresh[:0]
	for _, v := range ids {
		st := net.nodes[v]
		for _, r := range st.wakes {
			net.cal.schedule(r, v)
		}
		st.wakes = st.wakes[:0]
		if len(st.touched) > 0 {
			insertionSortByTo(st.touched)
			fresh = append(fresh, st.touched...)
			for i := range st.touched {
				st.touched[i] = nil
			}
			st.touched = st.touched[:0]
		}
	}
	net.tr.enqueue(net.now, fresh)
	for i := range fresh {
		fresh[i] = nil
	}
	net.tr.fresh = fresh[:0]
}

// insertionSortByTo sorts a node's touched links by destination. The lists
// are tiny (bounded by the node's degree, typically a handful), where
// insertion sort beats sort.Slice without allocating.
func insertionSortByTo(ls []*link) {
	for i := 1; i < len(ls); i++ {
		l := ls[i]
		j := i - 1
		for j >= 0 && ls[j].to > l.to {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = l
	}
}
