package congest

import (
	"testing"
	"testing/quick"

	"congestmwc/internal/gen"
)

// Property: a single message of size s over a bandwidth-B link is delivered
// at round ceil(s/B), for arbitrary s and B.
func TestFragmentationRoundProperty(t *testing.T) {
	prop := func(sizeRaw, bwRaw uint8) bool {
		size := 1 + int(sizeRaw)%40
		bw := 1 + int(bwRaw)%8
		net, err := NewNetwork(gen.Path(2), Options{Bandwidth: bw})
		if err != nil {
			return false
		}
		at := -1
		p := &fragProgram{size: size, deliveredAt: &at}
		if _, err := net.Run(progsFor(2, p), 0); err != nil {
			return false
		}
		want := (size + bw - 1) / bw
		return at == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FIFO pipelining — k unit messages over one link are all
// delivered, in order, with the last arriving at round ceil(k*size/B).
func TestPipeliningRoundProperty(t *testing.T) {
	prop := func(kRaw, bwRaw uint8) bool {
		k := 1 + int(kRaw)%50
		bw := 1 + int(bwRaw)%6
		net, err := NewNetwork(gen.Path(2), Options{Bandwidth: bw})
		if err != nil {
			return false
		}
		last, recv := -1, 0
		p := &pipelineProgram{k: k, lastAt: &last, received: &recv}
		if _, err := net.Run(progsFor(2, p), 0); err != nil {
			return false
		}
		want := (2*k + bw - 1) / bw // each message is 2 words
		return recv == k && last == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// orderProgram records the payload order of received messages.
type orderProgram struct {
	Base
	got *[]int64
}

func (p *orderProgram) Init(nd *Node) {
	if nd.ID() == 0 {
		for i := int64(0); i < 10; i++ {
			nd.SendTag(1, 1, i)
		}
	}
}

func (p *orderProgram) Deliver(nd *Node, d Delivery) {
	if nd.ID() == 1 {
		*p.got = append(*p.got, d.Msg.Words[0])
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	net, err := NewNetwork(gen.Path(2), Options{Bandwidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	if _, err := net.Run(progsFor(2, &orderProgram{got: &got}), 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("received %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("message %d out of order: got payload %d", i, v)
		}
	}
}

// Property: stats are conserved — words delivered equal the sum of message
// sizes, and the flood touches every node exactly once.
func TestStatsConservation(t *testing.T) {
	prop := func(nRaw uint8, seed int64) bool {
		n := 3 + int(nRaw)%40
		g, err := (gen.Random{N: n, P: 0.1, Seed: seed}).Graph()
		if err != nil {
			return false
		}
		net, err := NewNetwork(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		p := newFlood(n)
		if _, err := net.Run(progsFor(n, p), 0); err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if p.heardAt[v] < 0 {
				return false // flood must reach everyone
			}
		}
		s := net.Stats()
		// Flood messages are 1-word (tag only): words == messages.
		return s.Words == s.Messages && s.Rounds > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
