package congest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"congestmwc/internal/gen"
)

// cancelAtObserver cancels a context the first time round k executes, so
// cancellation lands at a deterministic point of the run.
type cancelAtObserver struct {
	k      int
	cancel context.CancelFunc
}

func (o *cancelAtObserver) OnRound(round int) {
	if round >= o.k {
		o.cancel()
	}
}

func (o *cancelAtObserver) OnMessage(round, from, to int, m Msg) {}

// runCanceledChatter starts an endless chatter run that is canceled at
// round k and returns the rounds consumed plus the run error.
func runCanceledChatter(t *testing.T, parallel bool, k int) (int, *Network, error) {
	t.Helper()
	const n = 8
	net, err := NewNetwork(gen.Ring(n, false, false, 1), Options{Seed: 1, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net.SetContext(ctx)
	net.SetObserver(&cancelAtObserver{k: k, cancel: cancel})
	rounds, err := net.Run(progsFor(n, chatterProgram{}), 0)
	return rounds, net, err
}

func TestCancelMidRunStopsWithinOneRound(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			const k = 40
			rounds, net, err := runCanceledChatter(t, parallel, k)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("Run error = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run error = %v, want to wrap context.Canceled", err)
			}
			// The chatter never quiesces: without cancellation the run would
			// only stop at the default budget (millions of rounds). With the
			// context canceled as round k starts, the run must stop within
			// one executed round.
			if rounds < k || rounds > k+1 {
				t.Errorf("rounds = %d, want within one round of %d", rounds, k)
			}
			if got := net.Stats().Rounds; got != rounds {
				t.Errorf("Stats.Rounds = %d, want %d (executed work only)", got, rounds)
			}
		})
	}
}

func TestCancelBeforeRun(t *testing.T) {
	net, err := NewNetwork(gen.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net.SetContext(ctx)
	rounds, err := net.Run(progsFor(2, chatterProgram{}), 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run error = %v, want ErrCanceled", err)
	}
	if rounds != 0 || net.Stats().Rounds != 0 {
		t.Errorf("rounds = %d stats = %d, want 0 work before a canceled run", rounds, net.Stats().Rounds)
	}
}

func TestDeadlineExceededIsDistinguishable(t *testing.T) {
	net, err := NewNetwork(gen.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	net.SetContext(ctx)
	if _, err := net.Run(progsFor(2, chatterProgram{}), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run error = %v, want to wrap context.DeadlineExceeded", err)
	}
}

// cancelInInitProgram cancels the network's context from the Init phase
// and sends nothing, so the run loop's pending-work condition is false as
// soon as the Init batch ends.
type cancelInInitProgram struct {
	Base
	cancel context.CancelFunc
}

func (p cancelInInitProgram) Init(*Node) { p.cancel() }

func TestCancelDuringInitPhase(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			const n = 8
			net, err := NewNetwork(gen.Ring(n, false, false, 1), Options{Seed: 1, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			net.SetContext(ctx)
			// With nothing queued and nothing scheduled after Init, a run that
			// missed the post-Init abort check would return nil over a
			// partially initialized network.
			if _, err := net.Run(progsFor(n, cancelInInitProgram{cancel: cancel}), 0); !errors.Is(err, ErrCanceled) {
				t.Fatalf("Run error = %v, want ErrCanceled for a cancellation during Init", err)
			}
		})
	}
}

func TestSetContextNilRemovesAbortSignal(t *testing.T) {
	g := gen.Path(4)
	net, err := NewNetwork(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net.SetContext(ctx)
	net.SetContext(nil)
	p := newFlood(4)
	if _, err := net.Run(progsFor(4, p), 0); err != nil {
		t.Fatalf("Run after SetContext(nil) = %v, want success", err)
	}
}

func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, _, err := runCanceledChatter(t, true, 25); !errors.Is(err, ErrCanceled) {
			t.Fatalf("Run error = %v, want ErrCanceled", err)
		}
	}
	// The parallel engine joins its workers at the per-round barrier even
	// when they bail on cancellation, so the goroutine count must settle
	// back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines after canceled runs = %d, want <= %d", after, before)
	}
}
