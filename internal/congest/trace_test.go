package congest

import (
	"strings"
	"testing"
)

// Direct unit tests for the bundled observers: TraceWriter's suppression
// accounting and CountingObserver's tallies, plus the Multi fan-out.

func TestTraceWriterSuppressionAccounting(t *testing.T) {
	var sb strings.Builder
	tw := &TraceWriter{W: &sb, MaxMessages: 2}
	for i := 0; i < 5; i++ {
		tw.OnMessage(1, 0, 1, Msg{Tag: 9, Words: []int64{int64(i), 3}})
	}
	if got := tw.Suppressed(); got != 3 {
		t.Fatalf("Suppressed() = %d, want 3", got)
	}
	tw.Flush()
	out := sb.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 printed + 1 suppression:\n%s", len(lines), out)
	}
	// The size field must be 1 (tag) + payload words.
	if want := "r=1 0->1 tag=9 size=3 words=[0 3]"; lines[0] != want {
		t.Errorf("line 0 = %q, want %q", lines[0], want)
	}
	if want := "... 3 messages suppressed"; lines[2] != want {
		t.Errorf("line 2 = %q, want %q", lines[2], want)
	}

	// Flush is incremental: nothing new suppressed, nothing written.
	before := sb.Len()
	tw.Flush()
	if sb.Len() != before {
		t.Errorf("second Flush wrote output with nothing new suppressed")
	}

	// Further suppressed messages are reported as a delta by the next
	// run-end notification.
	tw.OnMessage(2, 1, 0, Msg{Tag: 9})
	tw.OnRunEnd(2)
	if !strings.HasSuffix(sb.String(), "... 1 messages suppressed\n") {
		t.Errorf("OnRunEnd did not flush the delta:\n%s", sb.String())
	}
	if got := tw.Suppressed(); got != 4 {
		t.Errorf("Suppressed() = %d, want 4", got)
	}
}

func TestTraceWriterUnlimited(t *testing.T) {
	var sb strings.Builder
	tw := &TraceWriter{W: &sb}
	for i := 0; i < 4; i++ {
		tw.OnMessage(i, 0, 1, Msg{Tag: 1})
	}
	tw.Flush()
	if got := strings.Count(sb.String(), "\n"); got != 4 {
		t.Errorf("got %d lines, want 4 (no suppression line without MaxMessages)", got)
	}
	if tw.Suppressed() != 0 {
		t.Errorf("Suppressed() = %d, want 0", tw.Suppressed())
	}
}

func TestCountingObserver(t *testing.T) {
	var c CountingObserver
	if c.PerTag != nil {
		t.Fatal("PerTag should start nil (lazy init)")
	}
	c.OnRound(1)
	c.OnRound(2)
	c.OnMessage(1, 0, 1, Msg{Tag: 7})
	c.OnMessage(1, 1, 0, Msg{Tag: 7, Words: []int64{1}})
	c.OnMessage(2, 0, 1, Msg{Tag: 8})
	if c.Rounds != 2 || c.Messages != 3 {
		t.Errorf("Rounds=%d Messages=%d, want 2 and 3", c.Rounds, c.Messages)
	}
	if c.PerTag[7] != 2 || c.PerTag[8] != 1 {
		t.Errorf("PerTag = %v, want {7:2, 8:1}", c.PerTag)
	}
}

// extRecorder records every event including all optional extensions.
type extRecorder struct {
	events []string
}

func (r *extRecorder) add(e string)                 { r.events = append(r.events, e) }
func (r *extRecorder) OnRound(round int)            { r.add("round") }
func (r *extRecorder) OnMessage(_, _, _ int, _ Msg) { r.add("msg") }
func (r *extRecorder) OnRoundEnd(int, RoundStats)   { r.add("roundEnd") }
func (r *extRecorder) OnPhaseBegin(string, int)     { r.add("phaseBegin") }
func (r *extRecorder) OnPhaseEnd(string, int)       { r.add("phaseEnd") }
func (r *extRecorder) OnRunStart(int)               { r.add("runStart") }
func (r *extRecorder) OnRunEnd(int)                 { r.add("runEnd") }

func TestMultiFanOut(t *testing.T) {
	full := &extRecorder{}
	base := &CountingObserver{}
	m := Multi{full, base}

	m.OnRunStart(0)
	m.OnPhaseBegin("p", 0)
	m.OnRound(1)
	m.OnMessage(1, 0, 1, Msg{Tag: 5})
	m.OnRoundEnd(1, RoundStats{Messages: 1, Words: 1})
	m.OnPhaseEnd("p", 1)
	m.OnRunEnd(1)

	want := []string{"runStart", "phaseBegin", "round", "msg", "roundEnd", "phaseEnd", "runEnd"}
	if len(full.events) != len(want) {
		t.Fatalf("full recorder saw %v, want %v", full.events, want)
	}
	for i := range want {
		if full.events[i] != want[i] {
			t.Fatalf("full recorder saw %v, want %v", full.events, want)
		}
	}
	// The base observer only implements Observer; extension events must not
	// reach it (and must not panic the fan-out).
	if base.Rounds != 1 || base.Messages != 1 {
		t.Errorf("base observer saw Rounds=%d Messages=%d, want 1 and 1", base.Rounds, base.Messages)
	}
}
