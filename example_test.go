package congestmwc_test

import (
	"fmt"

	"congestmwc"
)

// A directed ring with one shortcut: the shortest directed cycle is
// 5 -> 6 -> ... -> 20 -> 5 (16 edges).
func exampleGraph() *congestmwc.Graph {
	var edges []congestmwc.Edge
	for i := 0; i < 60; i++ {
		edges = append(edges, congestmwc.Edge{From: i, To: (i + 1) % 60})
	}
	edges = append(edges, congestmwc.Edge{From: 20, To: 5})
	g, err := congestmwc.NewGraph(60, edges, congestmwc.Directed)
	if err != nil {
		panic(err)
	}
	return g
}

func ExampleApproxMWC() {
	g := exampleGraph()
	res, err := congestmwc.ApproxMWC(g, congestmwc.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("weight within factor 2: %d (found=%v)\n", res.Weight, res.Found)
	// Output:
	// weight within factor 2: 16 (found=true)
}

func ExampleExactMWC() {
	g := exampleGraph()
	res, err := congestmwc.ExactMWC(g, congestmwc.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	w, err := g.VerifyCycle(res.Cycle)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact MWC %d, witness verifies at %d\n", res.Weight, w)
	// Output:
	// exact MWC 16, witness verifies at 16
}

func ExampleReferenceMWC() {
	g := exampleGraph()
	w, err := congestmwc.ReferenceMWC(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("sequential ground truth:", w)
	// Output:
	// sequential ground truth: 16
}

func ExampleKSourceBFS() {
	g := exampleGraph()
	res, err := congestmwc.KSourceBFS(g, []int{0, 30}, congestmwc.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("d(0 -> 45) = %d, d(30 -> 10) = %d\n", res.Dist[45][0], res.Dist[10][1])
	// Output:
	// d(0 -> 45) = 45, d(30 -> 10) = 40
}
