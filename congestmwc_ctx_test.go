package congestmwc

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"congestmwc/internal/obs"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error, "" = valid
	}{
		{"zero value", Options{}, ""},
		{"typical", Options{Seed: 7, Bandwidth: 8, Eps: 0.5, SampleFactor: 2, Parallel: true, Workers: 4}, ""},
		{"negative bandwidth", Options{Bandwidth: -1}, "negative bandwidth"},
		{"negative eps", Options{Eps: -0.1}, "eps"},
		{"huge eps", Options{Eps: 5}, "eps"},
		{"NaN eps", Options{Eps: math.NaN()}, "eps"},
		{"negative sample factor", Options{SampleFactor: -2}, "sample factor"},
		{"inf sample factor", Options{SampleFactor: math.Inf(1)}, "sample factor"},
		{"negative workers", Options{Workers: -3, Parallel: true}, "negative worker count"},
		{"workers without parallel", Options{Workers: 4}, "conflicts with Parallel=false"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	g, err := NewGraph(4, ringEdges(4, 1), Directed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApproxMWC(g, Options{Bandwidth: -4}); err == nil {
		t.Error("ApproxMWC accepted a negative bandwidth")
	}
	if _, err := ExactMWC(g, Options{Eps: math.Inf(1)}); err == nil {
		t.Error("ExactMWC accepted an infinite eps")
	}
	if _, err := ApproxMWCCtx(context.Background(), g, Options{Workers: 2}); err == nil {
		t.Error("ApproxMWCCtx accepted Workers without Parallel")
	}
}

// cancelCase runs one facade entry point with a pre-canceled context and
// checks the cancellation contract: a wrapped ctx error plus a partial
// result with Found == false.
func TestCtxVariantsHonorCancellation(t *testing.T) {
	g, err := NewGraph(16, ringEdges(16, 3), UndirectedWeighted)
	if err != nil {
		t.Fatal(err)
	}
	run := map[string]func(context.Context, *Graph, Options) (*Result, error){
		"approx": ApproxMWCCtx,
		"exact":  ExactMWCCtx,
	}
	for _, parallel := range []bool{false, true} {
		for name, fn := range run {
			t.Run(name, func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				res, err := fn(ctx, g, Options{Seed: 1, Parallel: parallel})
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error = %v, want to wrap context.Canceled", err)
				}
				if res == nil {
					t.Fatal("result = nil, want partial result with stats")
				}
				if res.Found {
					t.Error("partial result claims Found")
				}
			})
		}
	}
}

func TestCtxVariantsHonorDeadline(t *testing.T) {
	g, err := NewGraph(16, ringEdges(16, 1), Directed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := ApproxMWCCtx(ctx, g, Options{Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want to wrap context.DeadlineExceeded", err)
	}
	if res == nil || res.Found {
		t.Fatalf("partial result = %+v, want non-nil with Found=false", res)
	}
	// A full run on the same graph consumes rounds; the expired one must
	// report strictly less work than completion.
	full, err := ApproxMWC(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds >= full.Rounds && full.Rounds > 0 {
		t.Errorf("partial Rounds = %d, want < full run's %d", res.Rounds, full.Rounds)
	}
}

func TestCtxVariantMatchesPlainCall(t *testing.T) {
	g, err := NewGraph(12, ringEdges(12, 2), DirectedWeighted)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ApproxMWC(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := ApproxMWCCtx(context.Background(), g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Weight != ctxed.Weight || plain.Rounds != ctxed.Rounds || plain.Found != ctxed.Found {
		t.Errorf("Ctx variant diverged: plain=%+v ctx=%+v", plain, ctxed)
	}
}

func TestWithObserverSeesRun(t *testing.T) {
	g, err := NewGraph(10, ringEdges(10, 1), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	res, err := ApproxMWC(g, Options{Seed: 1}.WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	if col.Rounds != res.Rounds {
		t.Errorf("collector rounds = %d, want %d", col.Rounds, res.Rounds)
	}
	if col.Messages == 0 {
		t.Error("collector saw no messages")
	}
}
