package congestmwc

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"congestmwc/internal/gen"
	"congestmwc/internal/seq"
)

// TestParseGuarantee pins down the token grammar.
func TestParseGuarantee(t *testing.T) {
	good := map[string]Guarantee{
		"exact":  GuaranteeExact,
		"EXACT":  GuaranteeExact,
		" girth": GuaranteeGirth,
		"2":      GuaranteeTwo,
		"2+eps":  GuaranteeTwoEps,
		"1":      Guarantee("1"),
		"1.5":    Guarantee("1.5"),
		"3":      Guarantee("3"),
	}
	for in, want := range good {
		got, err := ParseGuarantee(in)
		if err != nil {
			t.Fatalf("ParseGuarantee(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseGuarantee(%q) = %q, want %q", in, got, want)
		}
	}
	for _, in := range []string{"", "best", "0.5", "-1", "2eps", "exactly"} {
		if _, err := ParseGuarantee(in); err == nil {
			t.Fatalf("ParseGuarantee(%q) accepted", in)
		}
	}
}

// TestPlannerDecisionTable freezes the planner's choices on a matrix of
// (guarantee, class, size, weight range) cells. The expectations encode the
// calibrated cost model: at simulable sizes the linear-round exact engines
// undercut the sublinear-round paper approximations (whose polylog/eps
// constants dominate until n is astronomically large), exact beats agarwal
// below the ~n=1000 crossover where batching pays off, and girthapx
// overtakes exact on large low-weight weighted instances. Any deliberate
// recalibration must update this table in the same change.
func TestPlannerDecisionTable(t *testing.T) {
	cases := []struct {
		q     Guarantee
		class Class
		n, m  int
		maxW  int64
		zeroW bool
		want  string // chosen algorithm, or "" for an error
	}{
		// Exact: the exact/agarwal duel. Small instances go to the plain
		// APSP engine; the batched pruning algorithm wins past the
		// crossover (0.3n > 10*sqrt(n) undirected, i.e. n > ~1100).
		{GuaranteeExact, Undirected, 64, 256, 1, false, AlgoNameExact},
		{GuaranteeExact, Undirected, 4096, 16384, 1, false, AlgoNameAgarwal},
		{GuaranteeExact, Directed, 64, 256, 1, false, AlgoNameExact},
		{GuaranteeExact, Directed, 4096, 16384, 1, false, AlgoNameAgarwal},
		{GuaranteeExact, UndirectedWeighted, 64, 256, 16, false, AlgoNameExact},
		{GuaranteeExact, DirectedWeighted, 64, 256, 16, false, AlgoNameExact},
		{GuaranteeExact, DirectedWeighted, 4096, 16384, 16, false, AlgoNameAgarwal},

		// Factor 2, undirected unweighted: at small n even here the exact
		// engine is cheapest (measured 70 vs 91 rounds at n=32); the
		// sqrt(n)-round sampled approximations take over past n ~ 230,
		// where "approx" and "girthapx" tie on the calibrated model and
		// the name tie-break is frozen.
		{GuaranteeTwo, Undirected, 64, 256, 1, false, AlgoNameExact},
		{GuaranteeTwo, Undirected, 4096, 16384, 1, false, AlgoNameApprox},
		// Girth factor: only meaningful undirected unweighted; exactness
		// satisfies it below the crossover, the paper algorithm above.
		{GuaranteeGirth, Undirected, 64, 256, 1, false, AlgoNameExact},
		{GuaranteeGirth, Undirected, 4096, 16384, 1, false, AlgoNameApprox},

		// Factor 2, undirected weighted: exact is cheapest at small n; the
		// girth approximation overtakes it once 0.9*sqrt(n)*(lg+maxW) falls
		// below 1.7n.
		{GuaranteeTwo, UndirectedWeighted, 64, 256, 16, false, AlgoNameExact},
		{GuaranteeTwo, UndirectedWeighted, 1024, 4096, 16, false, AlgoNameGirthApx},
		// Large weights push girthapx's stretched simulation past even the
		// exact engines.
		{GuaranteeTwo, UndirectedWeighted, 1024, 4096, 4096, false, AlgoNameExact},

		// Factor 2 directed: only "exact"/"agarwal"/"approx" serve the
		// class and the approximation's calibrated constant (~38 n^0.8 lg)
		// never undercuts the ~1.1n exact engines at representable sizes.
		{GuaranteeTwo, Directed, 64, 256, 1, false, AlgoNameExact},
		{GuaranteeTwo, Directed, 4096, 16384, 1, false, AlgoNameAgarwal},
		{GuaranteeTwoEps, DirectedWeighted, 64, 256, 16, false, AlgoNameExact},

		// Zero-weight edges filter out every algorithm that needs
		// weights >= 1, leaving the exact duo.
		{GuaranteeTwo, UndirectedWeighted, 1024, 4096, 16, true, AlgoNameExact},
		{GuaranteeTwoEps, DirectedWeighted, 64, 256, 16, true, AlgoNameExact},

		// Loose numeric ratios admit everything factor-2 admits.
		{Guarantee("3"), Undirected, 4096, 16384, 1, false, AlgoNameApprox},
		{Guarantee("1.5"), Undirected, 64, 256, 1, false, AlgoNameExact},

		// Unsatisfiable: girth off the undirected unweighted class.
		{GuaranteeGirth, Directed, 64, 256, 1, false, ""},
		{GuaranteeGirth, UndirectedWeighted, 64, 256, 16, false, ""},
		{GuaranteeGirth, DirectedWeighted, 64, 256, 16, false, ""},
	}
	for _, c := range cases {
		name := fmt.Sprintf("%s/%s/n%d/w%d/zero%v", c.q, c.class, c.n, c.maxW, c.zeroW)
		t.Run(name, func(t *testing.T) {
			f := Features{Class: c.class, N: c.n, M: c.m, MaxWeight: c.maxW, HasZeroWeight: c.zeroW}
			d, err := PlanFeatures(f, c.q, Options{})
			if c.want == "" {
				if err == nil {
					t.Fatalf("expected an unsatisfiable-guarantee error, got %+v", d)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if d.Algorithm != c.want {
				t.Fatalf("chose %q (est %.0f), want %q", d.Algorithm, d.EstRounds, c.want)
			}
			if d.Guarantee != Guarantee(strings.TrimSpace(strings.ToLower(string(c.q)))) {
				t.Fatalf("decision echoes guarantee %q, want %q", d.Guarantee, c.q)
			}
			if d.Reason == "" {
				t.Fatal("empty decision reason")
			}
		})
	}
}

// TestPlannerNeverWeakensGuarantee is the planner's core safety property:
// over every guarantee, class, and feature combination, the chosen
// algorithm's registered bound is at least as strong as the request.
func TestPlannerNeverWeakensGuarantee(t *testing.T) {
	guarantees := []Guarantee{
		GuaranteeExact, GuaranteeGirth, GuaranteeTwo, GuaranteeTwoEps,
		Guarantee("1"), Guarantee("1.5"), Guarantee("2.5"), Guarantee("10"),
	}
	classes := []Class{Undirected, Directed, UndirectedWeighted, DirectedWeighted}
	sizes := []int{2, 16, 100, 1000, 50000, 1 << 20}
	weights := []int64{1, 2, 100, 1 << 30}
	epses := []float64{0, 0.1, 0.25, 1, 4}
	const tol = 1e-9
	for _, q := range guarantees {
		for _, class := range classes {
			for _, n := range sizes {
				for _, maxW := range weights {
					for _, zero := range []bool{false, true} {
						for _, eps := range epses {
							f := Features{Class: class, N: n, M: 3 * n, MaxWeight: maxW, HasZeroWeight: zero}
							d, err := PlanFeatures(f, q, Options{Eps: eps})
							if err != nil {
								continue // unsatisfiable is a legal outcome; never a weak pick
							}
							a, ok := AlgorithmByName(d.Algorithm)
							if !ok {
								t.Fatalf("planner chose unregistered %q", d.Algorithm)
							}
							if !a.ServesClass(class) {
								t.Fatalf("%s on %s: %q does not serve the class", q, class, d.Algorithm)
							}
							if zero && a.RejectsZeroWeight {
								t.Fatalf("%s on %s: %q rejects zero weights but instance has one", q, class, d.Algorithm)
							}
							if q == GuaranteeGirth {
								if !a.Exact && !a.GirthFactor {
									t.Fatalf("girth on %s: %q has neither exactness nor the girth factor", class, d.Algorithm)
								}
								continue
							}
							if got, want := a.Ratio(class, eps), q.Ratio(eps); got > want+tol {
								t.Fatalf("%s on %s (eps %v): chose %q with ratio %v > requested %v",
									q, class, eps, d.Algorithm, got, want)
							}
							if math.Abs(d.Ratio-a.Ratio(class, eps)) > tol {
								t.Fatalf("decision ratio %v disagrees with registry %v", d.Ratio, a.Ratio(class, eps))
							}
						}
					}
				}
			}
		}
	}
}

// TestPlanMWCEndToEnd runs the guarantee-first entry point on concrete
// graphs of every class and checks the answer against the requested bound.
func TestPlanMWCEndToEnd(t *testing.T) {
	cases := []struct {
		class    Class
		directed bool
		weighted bool
		q        Guarantee
	}{
		{Undirected, false, false, GuaranteeExact},
		{Undirected, false, false, GuaranteeGirth},
		{Directed, true, false, GuaranteeTwo},
		{UndirectedWeighted, false, true, GuaranteeTwo},
		{DirectedWeighted, true, true, GuaranteeTwoEps},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s", c.class, c.q), func(t *testing.T) {
			gg, err := (gen.Random{N: 32, P: 0.15, Directed: c.directed, Weighted: c.weighted, MaxW: 8, Seed: 7}).Graph()
			if err != nil {
				t.Fatal(err)
			}
			g := &Graph{g: gg, class: c.class}
			ref, refFound := seq.MWC(gg)
			res, d, err := PlanMWC(g, c.q, Options{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if d.Algorithm == "" {
				t.Fatal("empty decision")
			}
			if !refFound {
				if res.Found {
					t.Fatalf("found %d in acyclic graph", res.Weight)
				}
				return
			}
			if !res.Found {
				t.Fatalf("cycle of weight %d missed by %q", ref, d.Algorithm)
			}
			bound := int64(math.Ceil(d.Ratio * float64(ref)))
			if res.Weight < ref || res.Weight > bound {
				t.Fatalf("%q: weight %d outside [%d, %d]", d.Algorithm, res.Weight, ref, bound)
			}
		})
	}
}

// TestPlanZeroWeightFallsBackToExact checks the feature extraction: a
// zero-weight edge must push factor-2 requests onto an exact engine, and
// the run must still return the exact answer.
func TestPlanZeroWeightFallsBackToExact(t *testing.T) {
	g, err := NewGraph(4, []Edge{
		{From: 0, To: 1, Weight: 0}, {From: 1, To: 2, Weight: 2},
		{From: 2, To: 3, Weight: 2}, {From: 3, To: 0, Weight: 2},
	}, UndirectedWeighted)
	if err != nil {
		t.Fatal(err)
	}
	f := FeaturesOf(g)
	if !f.HasZeroWeight {
		t.Fatal("zero-weight edge not detected")
	}
	res, d, err := PlanMWC(g, GuaranteeTwo, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := AlgorithmByName(d.Algorithm)
	if a.RejectsZeroWeight {
		t.Fatalf("planner chose %q, which rejects zero weights", d.Algorithm)
	}
	if !res.Found || res.Weight != 6 {
		t.Fatalf("got (%d, %v), want the exact 6", res.Weight, res.Found)
	}
}
