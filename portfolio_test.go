package congestmwc

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"congestmwc/internal/gen"
	"congestmwc/internal/seq"
)

func TestPortfolioRegistryShape(t *testing.T) {
	names := AlgorithmNames()
	want := []string{AlgoNameAgarwal, AlgoNameApprox, AlgoNameExact, AlgoNameGirthApx}
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
	for _, a := range Portfolio() {
		if a.Description == "" || len(a.Classes) == 0 || a.Ratio == nil || a.EstimateRounds == nil || a.run == nil {
			t.Fatalf("incomplete registry entry %q", a.Name)
		}
		for _, c := range a.Classes {
			r := a.Ratio(c, 0)
			if r < 1 {
				t.Fatalf("%q registers ratio %v < 1 on %s", a.Name, r, c)
			}
			if a.Exact && r != 1 {
				t.Fatalf("%q is marked exact but registers ratio %v on %s", a.Name, r, c)
			}
			if est := a.EstimateRounds(c, 64, 256, 8, 0); !(est > 0) || math.IsInf(est, 0) {
				t.Fatalf("%q estimates %v rounds on %s", a.Name, est, c)
			}
		}
	}
	if _, ok := AlgorithmByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

// TestRunAlgorithmDispatch runs every registry entry on every class it
// serves and checks the answer against the registered ratio and the
// reference solver; exact entries must match bit for bit, witnesses must
// verify.
func TestRunAlgorithmDispatch(t *testing.T) {
	type classGen struct {
		class    Class
		directed bool
		weighted bool
	}
	gens := []classGen{
		{Undirected, false, false},
		{Directed, true, false},
		{UndirectedWeighted, false, true},
		{DirectedWeighted, true, true},
	}
	for _, a := range Portfolio() {
		for _, cg := range gens {
			if !a.ServesClass(cg.class) {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", a.Name, cg.class), func(t *testing.T) {
				gg, err := (gen.Random{N: 28, P: 0.15, Directed: cg.directed, Weighted: cg.weighted, MaxW: 7, Seed: 11}).Graph()
				if err != nil {
					t.Fatal(err)
				}
				g := &Graph{g: gg, class: cg.class}
				ref, refFound := seq.MWC(gg)
				res, err := RunAlgorithm(a.Name, g, Options{Seed: 4})
				if err != nil {
					t.Fatal(err)
				}
				if !refFound {
					if res.Found {
						t.Fatalf("found %d in acyclic graph", res.Weight)
					}
					return
				}
				if !res.Found {
					t.Fatalf("cycle of weight %d missed", ref)
				}
				bound := int64(math.Ceil(a.Ratio(cg.class, 0) * float64(ref)))
				if res.Weight < ref || res.Weight > bound {
					t.Fatalf("weight %d outside [%d, %d]", res.Weight, ref, bound)
				}
				if a.Exact && res.Weight != ref {
					t.Fatalf("exact entry returned %d, reference %d", res.Weight, ref)
				}
				if res.Cycle != nil {
					w, err := seq.VerifyCycle(gg, res.Cycle)
					if err != nil {
						t.Fatalf("bad witness: %v", err)
					}
					if w != res.Weight {
						t.Fatalf("witness weight %d, reported %d", w, res.Weight)
					}
				}
				if res.Rounds <= 0 || res.Messages <= 0 {
					t.Fatalf("implausible stats: %d rounds, %d messages", res.Rounds, res.Messages)
				}
			})
		}
	}
}

func TestRunAlgorithmErrors(t *testing.T) {
	gg, err := (gen.Random{N: 10, P: 0.3, Directed: true, Seed: 1}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	g := &Graph{g: gg, class: Directed}
	if _, err := RunAlgorithm("nope", g, Options{}); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown name: %v", err)
	}
	if _, err := RunAlgorithm(AlgoNameGirthApx, g, Options{}); err == nil || !strings.Contains(err.Error(), "does not serve") {
		t.Fatalf("class mismatch: %v", err)
	}
	if _, err := GirthApxMWC(g, Options{}); err == nil {
		t.Fatal("GirthApxMWC accepted a directed graph")
	}
	if _, err := AgarwalMWC(g, Options{Bandwidth: -1}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestAgarwalMWCCancellation(t *testing.T) {
	gg, err := (gen.Random{N: 40, P: 0.1, Weighted: true, MaxW: 9, Seed: 3}).Graph()
	if err != nil {
		t.Fatal(err)
	}
	g := &Graph{g: gg, class: UndirectedWeighted}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AgarwalMWCCtx(ctx, g, Options{Seed: 3})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if res == nil {
		t.Fatal("expected a partial-progress result on cancellation")
	}
	if res.Found {
		t.Fatalf("cancelled run reported a result: %+v", res)
	}
}
