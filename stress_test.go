package congestmwc

// Failure-injection and edge-case integration tests: starved bandwidth,
// minimum-size networks, dense graphs, extreme weights, and repeated runs
// on one network. These exercise configurations outside the benchmark
// sweet spot where transport queueing, fragmentation and sampling corner
// cases are most likely to misbehave.

import (
	"testing"
)

func TestBandwidthStarvation(t *testing.T) {
	// Bandwidth 1: every message fragments (even a bare tag plus one word
	// takes 2 rounds). Results must stay correct, only rounds grow.
	g := randomGraph(t, 30, 0.08, Directed, 0, 21)
	want, wantErr := ReferenceMWC(g)
	if wantErr != nil {
		t.Skip("instance acyclic")
	}
	wide, err := ApproxMWC(g, Options{Seed: 5, SampleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := ApproxMWC(g, Options{Seed: 5, SampleFactor: 4, Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !narrow.Found || narrow.Weight < want || narrow.Weight > 2*want {
		t.Errorf("starved run broke correctness: (%d,%v) vs MWC %d",
			narrow.Weight, narrow.Found, want)
	}
	if narrow.Rounds <= wide.Rounds {
		t.Errorf("bandwidth 1 should cost more rounds: %d vs %d", narrow.Rounds, wide.Rounds)
	}
}

func TestMinimumNetworks(t *testing.T) {
	// Two nodes, one directed edge: connected communication, no cycle.
	g2, err := NewGraph(2, []Edge{{From: 0, To: 1}}, Directed)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*Result, error){
		"approx": func() (*Result, error) { return ApproxMWC(g2, Options{Seed: 1}) },
		"exact":  func() (*Result, error) { return ExactMWC(g2, Options{Seed: 1}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s on 2-node digraph: %v", name, err)
		}
		if res.Found {
			t.Errorf("%s found a cycle in a single directed edge", name)
		}
	}
	// Two nodes, anti-parallel arcs: MWC = 2.
	g2c, err := NewGraph(2, []Edge{{From: 0, To: 1}, {From: 1, To: 0}}, Directed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExactMWC(g2c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 2 {
		t.Errorf("2-cycle: got (%d,%v), want (2,true)", res.Weight, res.Found)
	}
	// Triangle: smallest undirected cycle.
	g3, err := NewGraph(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 2}}, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := ApproxMWC(g3, Options{Seed: 2, SampleFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !ares.Found || ares.Weight < 3 || ares.Weight > 5 {
		t.Errorf("triangle: got (%d,%v), want weight in [3,5]", ares.Weight, ares.Found)
	}
}

func TestDenseGraph(t *testing.T) {
	// Near-complete digraph: MWC is a 2-cycle with overwhelming probability;
	// heavy congestion stresses the overflow machinery.
	g := randomGraph(t, 40, 0.5, Directed, 0, 31)
	want, err := ReferenceMWC(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxMWC(g, Options{Seed: 3, SampleFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight < want || res.Weight > 2*want {
		t.Errorf("dense: got (%d,%v) vs MWC %d", res.Weight, res.Found, want)
	}
}

func TestExtremeWeights(t *testing.T) {
	// Weights spanning five orders of magnitude: scaling must stay sound.
	edges := []Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 100_000},
		{From: 2, To: 3, Weight: 3},
		{From: 3, To: 0, Weight: 7},
		{From: 1, To: 3, Weight: 90_000},
	}
	g, err := NewGraph(4, edges, UndirectedWeighted)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceMWC(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxMWC(g, Options{Seed: 4, Eps: 0.25, SampleFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight < want || float64(res.Weight) > 2.25*float64(want)+2 {
		t.Errorf("extreme weights: got (%d,%v) vs MWC %d", res.Weight, res.Found, want)
	}
}

func TestStarTopology(t *testing.T) {
	// A star has diameter 2 and no cycle; high-degree hubs stress per-link
	// fan-out.
	edges := make([]Edge, 0, 49)
	for i := 1; i < 50; i++ {
		edges = append(edges, Edge{From: 0, To: i})
	}
	g, err := NewGraph(50, edges, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxMWC(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("star is a tree; found cycle %d", res.Weight)
	}
	// Add one leaf-leaf edge: girth 3 through the hub.
	edges = append(edges, Edge{From: 7, To: 21})
	g2, err := NewGraph(50, edges, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ApproxMWC(g2, Options{Seed: 6, SampleFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Found || res2.Weight < 3 || res2.Weight > 5 {
		t.Errorf("star+chord: got (%d,%v), want weight in [3,5]", res2.Weight, res2.Found)
	}
}

func TestZeroWeightEdgesExactOnly(t *testing.T) {
	// Weight-0 edges are legal input; the exact algorithm must handle them
	// (the approximation rejects them per its documented contract).
	edges := []Edge{
		{From: 0, To: 1, Weight: 0},
		{From: 1, To: 2, Weight: 4},
		{From: 0, To: 2, Weight: 1},
	}
	g, err := NewGraph(3, edges, UndirectedWeighted)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceMWC(g)
	if err != nil {
		t.Fatal(err)
	}
	if want != 5 {
		t.Fatalf("reference = %d, want 5", want)
	}
	res, err := ExactMWC(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 5 {
		t.Errorf("exact with zero-weight edge: got (%d,%v), want (5,true)", res.Weight, res.Found)
	}
	if _, err := ApproxMWC(g, Options{Seed: 1}); err == nil {
		t.Error("approx should reject zero-weight edges per contract")
	}
}

func TestRepeatedSeedsStayUnsound_Free(t *testing.T) {
	// A battery of seeds on one instance: the approximation must never
	// under-report across repeated randomness draws.
	g := randomGraph(t, 36, 0.08, UndirectedWeighted, 11, 77)
	want, err := ReferenceMWC(g)
	if err != nil {
		t.Skip("acyclic instance")
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := ApproxMWC(g, Options{Seed: seed, SampleFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && res.Weight < want {
			t.Errorf("seed %d: %d under-reports MWC %d", seed, res.Weight, want)
		}
	}
}
