package congestmwc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"congestmwc/internal/agarwal"
	"congestmwc/internal/congest"
	"congestmwc/internal/girthapx"
)

// Algorithm names of the portfolio. "approx" and "exact" are the legacy
// facade entry points (the source paper's class-dispatched approximations
// and the APSP baseline); "agarwal" and "girthapx" are the successor-paper
// packages.
const (
	AlgoNameApprox   = "approx"
	AlgoNameExact    = "exact"
	AlgoNameAgarwal  = "agarwal"
	AlgoNameGirthApx = "girthapx"
)

// AlgorithmInfo describes one registered algorithm of the portfolio: which
// classes it serves, the approximation guarantee it is registered for, and
// a calibrated round-cost model the planner ranks candidates by.
type AlgorithmInfo struct {
	// Name is the registry key, used in job specs and CLI flags.
	Name string
	// Description is a one-line human summary.
	Description string
	// Classes lists the graph classes the algorithm serves.
	Classes []Class
	// Exact reports whether the registered ratio is exactly 1 on every
	// served class.
	Exact bool
	// Deterministic reports whether the algorithm uses no shared
	// randomness (its round count and answer depend only on the instance).
	Deterministic bool
	// RejectsZeroWeight reports that the algorithm declines weighted
	// instances containing zero-weight edges (the scaling/stretched
	// machinery needs weights >= 1). The planner filters on it.
	RejectsZeroWeight bool
	// GirthFactor reports that, on the undirected unweighted class, the
	// algorithm attains the paper's (2 - 1/g) girth factor — strictly
	// inside plain factor 2, and the only way (besides exactness) to meet
	// the "girth" guarantee.
	GirthFactor bool
	// Ratio returns the registered approximation factor on the class (1
	// for exact algorithms). The bound is what the oracle registry in
	// internal/check enforces on every fuzz instance.
	Ratio func(class Class, eps float64) float64
	// EstimateRounds is the planner's cost model: a round estimate from
	// instance features, theorem-shaped with constants calibrated against
	// the committed bench baselines (bench/portfolio_baseline.json).
	EstimateRounds func(class Class, n, m int, maxW int64, eps float64) float64

	run func(ctx context.Context, g *Graph, opts Options) (*Result, error)
}

// ServesClass reports whether the algorithm is registered for the class.
func (a AlgorithmInfo) ServesClass(c Class) bool {
	for _, cc := range a.Classes {
		if cc == c {
			return true
		}
	}
	return false
}

// portfolio is the fixed algorithm registry. Order is presentation order;
// the planner re-sorts by estimated cost.
var portfolio = []AlgorithmInfo{
	{
		Name:        AlgoNameApprox,
		Description: "the source paper's sublinear-round approximation for the graph's class",
		Classes:     []Class{Undirected, Directed, UndirectedWeighted, DirectedWeighted},
		// wmwc's scaling levels need weights >= 1 on the weighted classes.
		RejectsZeroWeight: true,
		GirthFactor:       true,
		Ratio: func(c Class, eps float64) float64 {
			switch c {
			case Undirected, Directed:
				return 2
			default:
				return 2 + epsOrDefault(eps)
			}
		},
		EstimateRounds: estApprox,
		run:            ApproxMWCCtx,
	},
	{
		Name:          AlgoNameExact,
		Description:   "O~(n)-round exact MWC via n-source APSP",
		Classes:       []Class{Undirected, Directed, UndirectedWeighted, DirectedWeighted},
		Exact:         true,
		Deterministic: true,
		Ratio:         func(Class, float64) float64 { return 1 },
		EstimateRounds: func(c Class, n, m int, maxW int64, eps float64) float64 {
			return estExact(c, n, m, maxW)
		},
		run: ExactMWCCtx,
	},
	{
		Name:          AlgoNameAgarwal,
		Description:   "deterministic exact MWC via batched k-source SSSP with candidate pruning",
		Classes:       []Class{Undirected, Directed, UndirectedWeighted, DirectedWeighted},
		Exact:         true,
		Deterministic: true,
		Ratio:         func(Class, float64) float64 { return 1 },
		EstimateRounds: func(c Class, n, m int, maxW int64, eps float64) float64 {
			return estAgarwal(c, n, m, maxW)
		},
		run: AgarwalMWCCtx,
	},
	{
		Name:        AlgoNameGirthApx,
		Description: "factor-2 undirected girth approximation from one exact sampled SSSP pass",
		Classes:     []Class{Undirected, UndirectedWeighted},
		// The sigma-detection phase runs on the stretched-graph simulation,
		// which needs weights >= 1.
		RejectsZeroWeight: true,
		Ratio:             func(Class, float64) float64 { return 2 },
		EstimateRounds: func(c Class, n, m int, maxW int64, eps float64) float64 {
			return estGirthApx(c, n, m, maxW)
		},
		run: GirthApxMWCCtx,
	},
}

func epsOrDefault(eps float64) float64 {
	if eps > 0 {
		return eps
	}
	return 0.25
}

// Cost models. Shapes follow the registered round theorems; the leading
// constants are least-squares fits to measured simulator rounds on
// sparse random instances (n in {32, 64, 128}, p = 4/n, maxW = 16, eps =
// 0.25 — the message-bound profile of BenchmarkPortfolio, committed in
// bench/portfolio_baseline.json), so the planner's ranking reflects what
// the simulator actually charges rather than asymptotics alone. The
// headline consequence of honest calibration: the sublinear-round paper
// algorithms carry polylog/eps constants that only pay off at n far
// beyond simulable sizes, so at serving scale the planner prefers the
// linear-round exact engines for everything the guarantees allow.

// estApprox: O~(sqrt(n)+D) undirected, O~(n^{4/5}+D) directed,
// O~(n^{2/3}+D) and O~(n^{3/5}+D) per scaling level weighted.
func estApprox(c Class, n, m int, maxW int64, eps float64) float64 {
	fn := float64(n)
	lg := math.Log2(fn + 2)
	levels := math.Log2(float64(maxW)+2) + 1
	switch c {
	case Undirected:
		return 1.8*math.Sqrt(fn)*lg + 1.2*fn
	case Directed:
		return 38 * math.Pow(fn, 0.8) * lg
	case UndirectedWeighted:
		return 17 * math.Pow(fn, 2.0/3) * lg * levels / epsOrDefault(eps)
	default: // DirectedWeighted
		return 42 * math.Pow(fn, 0.6) * lg * levels / epsOrDefault(eps)
	}
}

// estExact: one n-source pipelined BFS / Bellman-Ford, O(n + D) rounds;
// the undirected classes pay double for the O(n) vector exchange.
func estExact(c Class, n, m int, maxW int64) float64 {
	fn := float64(n)
	switch c {
	case Undirected, UndirectedWeighted:
		return 2.2 * fn
	default:
		return 1.1 * fn
	}
}

// estAgarwal: sqrt(n) batches of sqrt(n)-source runs. The batch barriers
// add a sqrt(n) term over the exact baseline while candidate pruning
// shrinks the linear term (strongly so on directed graphs, where measured
// rounds grow well below 1*n).
func estAgarwal(c Class, n, m int, maxW int64) float64 {
	fn := float64(n)
	switch c {
	case Undirected, UndirectedWeighted:
		return 1.9*fn + 10*math.Sqrt(fn)
	default:
		return 0.8*fn + 8*math.Sqrt(fn)
	}
}

// estGirthApx: one sampled exact SSSP pass (sqrt(n) log n sources) plus
// the sigma-detection BFS, whose stretched simulation scales with the
// weight magnitude on weighted graphs.
func estGirthApx(c Class, n, m int, maxW int64) float64 {
	fn := float64(n)
	lg := math.Log2(fn + 2)
	if c == UndirectedWeighted {
		return 0.9*math.Sqrt(fn)*(lg+float64(maxW)) + 0.5*fn
	}
	return 1.8*math.Sqrt(fn)*lg + 1.2*fn
}

// Portfolio returns a copy of the registered algorithm descriptors.
func Portfolio() []AlgorithmInfo {
	out := make([]AlgorithmInfo, len(portfolio))
	copy(out, portfolio)
	return out
}

// AlgorithmByName looks an algorithm up by its registry name.
func AlgorithmByName(name string) (AlgorithmInfo, bool) {
	for _, a := range portfolio {
		if a.Name == name {
			return a, true
		}
	}
	return AlgorithmInfo{}, false
}

// AlgorithmNames lists the registered names, sorted.
func AlgorithmNames() []string {
	names := make([]string, len(portfolio))
	for i, a := range portfolio {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// RunAlgorithm executes the named portfolio algorithm on the graph. It is
// RunAlgorithmCtx with a background context.
func RunAlgorithm(name string, g *Graph, opts Options) (*Result, error) {
	return RunAlgorithmCtx(context.Background(), name, g, opts)
}

// RunAlgorithmCtx executes the named portfolio algorithm under a context,
// with the same cancellation and partial-progress semantics as
// ApproxMWCCtx. Unknown names and unsupported graph classes return
// descriptive errors before any simulation runs.
func RunAlgorithmCtx(ctx context.Context, name string, g *Graph, opts Options) (*Result, error) {
	a, ok := AlgorithmByName(name)
	if !ok {
		return nil, fmt.Errorf("congestmwc: unknown algorithm %q (registered: %v)", name, AlgorithmNames())
	}
	if !a.ServesClass(g.class) {
		return nil, fmt.Errorf("congestmwc: algorithm %q does not serve class %s", name, g.class)
	}
	return a.run(ctx, g, opts)
}

// AgarwalMWC computes the exact minimum weight cycle with the batched
// deterministic k-source algorithm of internal/agarwal. It is
// AgarwalMWCCtx with a background context.
func AgarwalMWC(g *Graph, opts Options) (*Result, error) {
	return AgarwalMWCCtx(context.Background(), g, opts)
}

// AgarwalMWCCtx is AgarwalMWC under a context, with the same cancellation
// and partial-progress semantics as ApproxMWCCtx.
func AgarwalMWCCtx(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	net, err := congest.NewNetwork(g.g, opts.netOptions())
	if err != nil {
		return nil, fmt.Errorf("congestmwc: %w", err)
	}
	net.SetContext(ctx)
	if opts.observer != nil {
		net.SetObserver(opts.observer)
	}
	res, err := agarwal.MWC(net, agarwal.Spec{})
	if err != nil {
		return partialOnCancel(net, err)
	}
	out := newResult(res.Weight, res.Found, net.Stats())
	out.Cycle = res.Cycle
	return out, nil
}

// GirthApxMWC computes a factor-2 approximate minimum weight cycle on
// undirected graphs with internal/girthapx. It is GirthApxMWCCtx with a
// background context.
func GirthApxMWC(g *Graph, opts Options) (*Result, error) {
	return GirthApxMWCCtx(context.Background(), g, opts)
}

// GirthApxMWCCtx is GirthApxMWC under a context, with the same
// cancellation and partial-progress semantics as ApproxMWCCtx.
func GirthApxMWCCtx(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if g.class != Undirected && g.class != UndirectedWeighted {
		return nil, fmt.Errorf("congestmwc: girthapx serves undirected classes only, not %s", g.class)
	}
	net, err := congest.NewNetwork(g.g, opts.netOptions())
	if err != nil {
		return nil, fmt.Errorf("congestmwc: %w", err)
	}
	net.SetContext(ctx)
	if opts.observer != nil {
		net.SetObserver(opts.observer)
	}
	res, err := girthapx.Run(net, girthapx.Spec{SampleFactor: opts.SampleFactor})
	if err != nil {
		return partialOnCancel(net, err)
	}
	out := newResult(res.Weight, res.Found, net.Stats())
	out.Cycle = res.Cycle
	return out, nil
}
