package congestmwc

// Benchmarks regenerating Table 1 of the paper, one per row (experiment IDs
// from DESIGN.md). CONGEST cost is reported via custom metrics:
// "rounds/op" is the synchronous-round count — the quantity the paper
// bounds — and "ratio" the worst observed approximation factor. Wall-clock
// ns/op measures only the simulator, not the algorithm's model cost.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Larger sweeps with exponent fits: cmd/mwcbench.

import (
	"fmt"
	"testing"

	"congestmwc/internal/congest"
	"congestmwc/internal/dirmwc"
	"congestmwc/internal/exact"
	"congestmwc/internal/gen"
	"congestmwc/internal/girth"
	"congestmwc/internal/harness"
	"congestmwc/internal/ksssp"
	"congestmwc/internal/lb"
	"congestmwc/internal/proto"
	"congestmwc/internal/wmwc"
)

// benchUpper runs one upper-bound experiment at a fixed size.
func benchUpper(b *testing.B, id harness.Experiment, n int) {
	b.Helper()
	ub, ok := harness.UpperBounds()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	totalRounds, totalWords, peakLink := 0, 0, 0
	worst := 0.0
	for i := 0; i < b.N; i++ {
		res, err := ub.Run(n, int64(i)*37+1)
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += res.Rounds
		totalWords += res.Words
		if res.PeakLinkWords > peakLink {
			peakLink = res.PeakLinkWords
		}
		if res.Ratio > worst {
			worst = res.Ratio
		}
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(totalWords)/float64(b.N), "words/op")
	b.ReportMetric(float64(peakLink), "peak-link-words")
	b.ReportMetric(worst, "worst-ratio")
}

// --- Table 1, directed MWC rows ---

func BenchmarkT1DirectedExact(b *testing.B)   { benchUpper(b, harness.ExpDirectedExact, 192) }
func BenchmarkT1Directed2Approx(b *testing.B) { benchUpper(b, harness.ExpDirected2Approx, 128) }
func BenchmarkT1DirectedWeighted2Approx(b *testing.B) {
	benchUpper(b, harness.ExpDirectedW2Approx, 96)
}

// --- Table 1, undirected weighted MWC rows ---

func BenchmarkT1UndirWeightedExact(b *testing.B) { benchUpper(b, harness.ExpUndirWExact, 192) }
func BenchmarkT1UndirWeighted2Approx(b *testing.B) {
	benchUpper(b, harness.ExpUndirW2Approx, 128)
}

// --- Table 1, girth rows ---

func BenchmarkT1GirthExact(b *testing.B)  { benchUpper(b, harness.ExpGirthExact, 256) }
func BenchmarkT1GirthApprox(b *testing.B) { benchUpper(b, harness.ExpGirthApprox, 256) }

// The [44] baseline our Theorem 1.3.B row improves on.
func BenchmarkT1GirthPRTBaseline(b *testing.B) { benchUpper(b, harness.ExpGirthPRT, 256) }

// --- Theorem 1.6, multi-source rows ---

func BenchmarkT6KSourceBFS(b *testing.B)  { benchUpper(b, harness.ExpKSourceBFS, 256) }
func BenchmarkT6KSourceSSSP(b *testing.B) { benchUpper(b, harness.ExpKSourceSSSP, 128) }

// --- Table 1, lower-bound rows: cut transcript of the exact algorithm on
// the reduction families (Bits/op is the disjointness size the instance
// encodes; cutwords/op the measured transcript). ---

func benchLower(b *testing.B, id harness.Experiment, scale int) {
	b.Helper()
	lbe, ok := harness.LowerBounds()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cut, implied, bits, peak := 0, 0, 0, 0
	for i := 0; i < b.N; i++ {
		res, err := harness.RunLowerBound(lbe, scale, int64(i)*13+1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.GapOK || !res.DecisionOK {
			b.Fatalf("%s: gap or decision violated", id)
		}
		cut += res.CutWords
		implied += res.ImpliedRounds
		bits = res.Bits
		if res.PeakCutWords > peak {
			peak = res.PeakCutWords
		}
	}
	b.ReportMetric(float64(cut)/float64(b.N), "cutwords/op")
	b.ReportMetric(float64(implied)/float64(b.N), "implied-rounds/op")
	b.ReportMetric(float64(bits), "bits")
	b.ReportMetric(float64(peak), "peak-cut-words")
}

func BenchmarkT1DirectedLowerBound2Eps(b *testing.B)  { benchLower(b, harness.ExpDirectedLB2, 8) }
func BenchmarkT1DirectedLowerBoundAlpha(b *testing.B) { benchLower(b, harness.ExpDirectedLBA, 8) }
func BenchmarkT1UndirWeightedLowerBound(b *testing.B) { benchLower(b, harness.ExpUndirWLB2, 8) }
func BenchmarkT1GirthLowerBoundAlpha(b *testing.B)    { benchLower(b, harness.ExpGirthLBA, 6) }

// --- Scaling sweeps: the per-size round counts behind the exponent fits of
// EXPERIMENTS.md, as sub-benchmarks (go test -bench=Sweep). ---

func BenchmarkSweepGirthApprox(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchUpper(b, harness.ExpGirthApprox, n)
		})
	}
}

func BenchmarkSweepDirected2Approx(b *testing.B) {
	for _, n := range []int{48, 96, 192} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchUpper(b, harness.ExpDirected2Approx, n)
		})
	}
}

func BenchmarkSweepExactGirth(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchUpper(b, harness.ExpGirthExact, n)
		})
	}
}

func BenchmarkSweepLowerBoundCut(b *testing.B) {
	for _, scale := range []int{4, 8, 12, 16} {
		scale := scale
		b.Run(fmt.Sprintf("m=%d", scale), func(b *testing.B) {
			benchLower(b, harness.ExpDirectedLB2, scale)
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// Ablation: the phase-overflow cleanup of Algorithm 3. A tight cap forces
// many overflow vertices; the cleanup BFS keeps the result correct at a
// round cost, which this benchmark makes visible.
func BenchmarkAblationOverflowCap(b *testing.B) {
	for _, cap := range []int{1, 8, 64} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			rounds, overflow := 0, 0
			for i := 0; i < b.N; i++ {
				g, err := (gen.Random{N: 96, P: 4.0 / 96, Directed: true, Seed: int64(i)}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: int64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := dirmwc.Run(net, dirmwc.Spec{Cap: cap})
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
				overflow += res.Overflow
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(overflow)/float64(b.N), "overflow/op")
		})
	}
}

// Ablation: sampling rate of the girth algorithm. More samples improve the
// chance of the near-2 candidates but cost rounds in the sampled BFS.
func BenchmarkAblationGirthSampling(b *testing.B) {
	for _, factor := range []float64{1, 3, 9} {
		factor := factor
		b.Run(fmt.Sprintf("factor=%v", factor), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				g, err := (gen.Random{N: 256, P: 4.0 / 256, Seed: int64(i)}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: int64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := girth.Run(net, girth.Spec{SampleFactor: factor})
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// Ablation: Algorithm 1 against the one-BFS-per-source baseline of Theorem
// 1.6.A's k*SSSP branch.
func BenchmarkAblationKSourceVsSequential(b *testing.B) {
	const n, k = 192, 14
	sources := make([]int, k)
	for i := range sources {
		sources[i] = i * n / k
	}
	run := func(b *testing.B, sequential bool) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			g, err := (gen.Random{N: n, P: 4.0 / n, Directed: true, Seed: int64(i)}).Graph()
			if err != nil {
				b.Fatal(err)
			}
			net, err := congest.NewNetwork(g, congest.Options{Seed: int64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			var r *ksssp.Result
			if sequential {
				r, err = ksssp.RunSequential(net, ksssp.Spec{Sources: sources})
			} else {
				r, err = ksssp.Run(net, ksssp.Spec{Sources: sources})
			}
			if err != nil {
				b.Fatal(err)
			}
			rounds += r.Rounds
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	}
	b.Run("algorithm1", func(b *testing.B) { run(b, false) })
	b.Run("sequential", func(b *testing.B) { run(b, true) })
}

// Ablation: simulator engine choice (results identical; wall-clock differs).
func BenchmarkAblationEngine(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		parallel := parallel
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := (gen.Random{N: 256, P: 4.0 / 256, Seed: 3}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: 5, Parallel: parallel})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := girth.Run(net, girth.Spec{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStretchedIdleRounds measures the event-driven scheduler on the
// workloads it exists for: the scaling/stretching reductions (Section 5),
// where round counts are Theta(stretched distances) and almost every round
// is empty. Each case runs once with round skipping (the default) and once
// with Options.Stepwise iteration; results and round counts are asserted
// identical, so the ns/op ratio between the sub-benchmarks is exactly the
// scheduler's win (wall clock per delivered message vs per elapsed round).
// Recorded in bench/stretched_idle.json; the CI bench smoke keeps it
// compiling and honest.
func BenchmarkStretchedIdleRounds(b *testing.B) {
	type result struct {
		rounds   int
		messages int
	}
	cases := []struct {
		name string
		run  func(b *testing.B, stepwise bool, seed int64) result
	}{
		{
			// High-weight scaled SSSP: on a heavy ring at tight accuracy the
			// stretched simulation is almost pure idle time — ~620k rounds
			// carry ~650 messages, so the single BFS wavefront sleeps through
			// long scaled edge traversals. Measured ~8x event-driven vs
			// stepwise (bench/stretched_idle.json; acceptance bar >=5x).
			name: "scaledsssp",
			run: func(b *testing.B, stepwise bool, seed int64) result {
				g := gen.Ring(96, false, true, 3500)
				net, err := congest.NewNetwork(g, congest.Options{Seed: seed, Stepwise: stepwise})
				if err != nil {
					b.Fatal(err)
				}
				res, err := proto.RunApproxHopSSSP(net, proto.ApproxHopSSSPSpec{
					Sources: []int{0}, H: 48, Eps: 0.001, Dir: proto.Undirected,
				})
				if err != nil {
					b.Fatal(err)
				}
				return result{rounds: res.Rounds, messages: net.Stats().Messages}
			},
		},
		{
			// Weighted MWC approximation on high weights: its short-cycle
			// levels run the same stretched substrate, but deliveries
			// dominate rounds, so this case guards the other side — the
			// event-driven scheduler must not slow message-bound workloads.
			name: "wmwc",
			run: func(b *testing.B, stepwise bool, seed int64) result {
				g, err := (gen.Random{N: 40, P: 5.0 / 40, Weighted: true,
					MaxW: 1024, Seed: 11}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: seed, Stepwise: stepwise})
				if err != nil {
					b.Fatal(err)
				}
				res, err := wmwc.Run(net, wmwc.Spec{Eps: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				return result{rounds: res.Rounds, messages: net.Stats().Messages}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			want := tc.run(b, true, 1) // stepwise reference, also warms caches
			for _, mode := range []string{"event", "stepwise"} {
				mode := mode
				b.Run(mode, func(b *testing.B) {
					rounds, messages := 0, 0
					for i := 0; i < b.N; i++ {
						got := tc.run(b, mode == "stepwise", 1)
						if got != want {
							b.Fatalf("%s: %+v, want %+v (scheduler equivalence broken)", mode, got, want)
						}
						rounds += got.rounds
						messages += got.messages
					}
					b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
					b.ReportMetric(float64(messages)/float64(b.N), "messages/op")
				})
			}
		})
	}
}

// Microbenchmarks of the substrates.

func BenchmarkProtoMultiBFS(b *testing.B) {
	g, err := (gen.Random{N: 512, P: 4.0 / 512, Directed: true, Seed: 2}).Graph()
	if err != nil {
		b.Fatal(err)
	}
	sources := []int{0, 100, 200, 300, 400, 500}
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		net, err := congest.NewNetwork(g, congest.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := proto.RunMultiBFS(net, proto.MultiBFSSpec{Sources: sources, Dir: proto.Forward})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func BenchmarkLBInstanceConstruction(b *testing.B) {
	d := lb.RandomDisjointness(16*16, false, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Directed2Eps(16, d); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the long/short hop threshold H of the directed 2-approximation
// — the round-complexity vs work-split tradeoff the paper's conclusion
// raises as an open tuning question. Larger H means fewer samples (cheaper
// long-cycle phase) but a wider restricted BFS.
func BenchmarkAblationHopThreshold(b *testing.B) {
	for _, h := range []int{8, 16, 32} {
		h := h
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				g, err := (gen.Random{N: 96, P: 4.0 / 96, Directed: true, Seed: int64(i)}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: int64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := dirmwc.Run(net, dirmwc.Spec{H: h})
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// Ablation: link bandwidth. Rounds scale inversely with the per-round word
// budget; the asymptotic bounds assume Theta(log n) bits = O(1) words.
func BenchmarkAblationBandwidth(b *testing.B) {
	for _, bw := range []int{1, 4, 16} {
		bw := bw
		b.Run(fmt.Sprintf("B=%d", bw), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				g, err := (gen.Random{N: 256, P: 4.0 / 256, Seed: 3}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: 5, Bandwidth: bw})
				if err != nil {
					b.Fatal(err)
				}
				res, err := girth.Run(net, girth.Spec{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkCSRHotPath measures the per-message cost of the simulator's hot
// path — graph adjacency, transport delivery, handler dispatch — on the
// three workload profiles the CSR/zero-alloc data layer targets:
//
//   - wmwc_msgbound: the weighted MWC approximation instance from
//     bench/stretched_idle.json, where deliveries (not idle rounds)
//     dominate wall clock; the refactor's primary acceptance case.
//   - scaledsssp_gapbound: the stretched/scaled SSSP instance dominated by
//     skipped empty rounds; guards that data-layer changes do not slow the
//     event-driven scheduler's win.
//   - dense_apsp: exact MWC via all-source BFS on a dense random graph —
//     maximum adjacency-scan and per-round fan-out pressure.
//
// Run with -benchmem: allocs/op is the number the pooled transport buffers
// exist to drive down. Baselines live in bench/csr_hotpath.json and are
// enforced by scripts/benchgate.go in CI.
func BenchmarkCSRHotPath(b *testing.B) {
	cases := []struct {
		name string
		run  func(b *testing.B, seed int64) (rounds, messages int)
	}{
		{
			name: "wmwc_msgbound",
			run: func(b *testing.B, seed int64) (int, int) {
				g, err := (gen.Random{N: 40, P: 5.0 / 40, Weighted: true,
					MaxW: 1024, Seed: 11}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				res, err := wmwc.Run(net, wmwc.Spec{Eps: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				return res.Rounds, net.Stats().Messages
			},
		},
		{
			name: "scaledsssp_gapbound",
			run: func(b *testing.B, seed int64) (int, int) {
				g := gen.Ring(96, false, true, 3500)
				net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				res, err := proto.RunApproxHopSSSP(net, proto.ApproxHopSSSPSpec{
					Sources: []int{0}, H: 48, Eps: 0.001, Dir: proto.Undirected,
				})
				if err != nil {
					b.Fatal(err)
				}
				return res.Rounds, net.Stats().Messages
			},
		},
		{
			name: "dense_apsp",
			run: func(b *testing.B, seed int64) (int, int) {
				g, err := (gen.Random{N: 64, P: 0.4, Seed: 7}).Graph()
				if err != nil {
					b.Fatal(err)
				}
				net, err := congest.NewNetwork(g, congest.Options{Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				res, err := exact.MWC(net)
				if err != nil {
					b.Fatal(err)
				}
				return res.Rounds, net.Stats().Messages
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			rounds, messages := 0, 0
			for i := 0; i < b.N; i++ {
				r, m := tc.run(b, 1)
				rounds += r
				messages += m
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(messages)/float64(b.N), "messages/op")
		})
	}
}

// portfolioBenchGraph builds the message-bound portfolio profile: a dense
// random graph at n=96 (p=0.15, ~9x the connectivity threshold) where
// traffic, not diameter, dominates. Exactly the same profile (class, size,
// density, weights, seeds) is run by `mwcbench -portfolio -json`, which
// produced the committed bench/portfolio_baseline.json; the rounds/op
// figures are deterministic, so scripts/benchgate.go gates them exactly.
func portfolioBenchGraph(b *testing.B, class Class, maxW int64) *Graph {
	b.Helper()
	r := gen.Random{
		N: 96, P: 0.15, Seed: 7, MaxW: maxW,
		Directed: class == Directed || class == DirectedWeighted,
		Weighted: class == UndirectedWeighted || class == DirectedWeighted,
	}
	inner, err := r.Graph()
	if err != nil {
		b.Fatal(err)
	}
	edges := make([]Edge, 0, inner.M())
	for _, e := range inner.Edges() {
		edges = append(edges, Edge{From: e.From, To: e.To, Weight: e.Weight})
	}
	g, err := NewGraph(96, edges, class)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPortfolio runs every registered portfolio algorithm on the
// message-bound profile — one sub-benchmark per algorithm, matching the
// case names of bench/portfolio_baseline.json. The seed is fixed, so
// rounds/op and messages/op are bit-deterministic run to run.
func BenchmarkPortfolio(b *testing.B) {
	for _, a := range Portfolio() {
		a := a
		class, maxW := UndirectedWeighted, int64(16)
		if a.Name == AlgoNameGirthApx {
			// The girth approximation's stretched phase is pseudo-polynomial
			// in the weights; its message-bound profile is the unweighted one.
			class, maxW = Undirected, 1
		}
		g := portfolioBenchGraph(b, class, maxW)
		b.Run(a.Name, func(b *testing.B) {
			totalRounds, totalMsgs := 0, 0
			for i := 0; i < b.N; i++ {
				res, err := RunAlgorithm(a.Name, g, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Found {
					b.Fatalf("%s found no cycle on the dense profile", a.Name)
				}
				totalRounds += res.Rounds
				totalMsgs += res.Messages
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(totalMsgs)/float64(b.N), "messages/op")
		})
	}
}
